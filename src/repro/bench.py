"""Macro-benchmark harness: the batched compute engine vs its serial path.

``python -m repro bench`` runs the three macro-benchmarks of the batched
FFN compute engine —

- ``conv3d_batched``: one batched ``conv3d_forward_batch`` over ``N``
  FOV-sized inputs vs ``N`` unbatched ``conv3d_forward`` calls;
- ``flood_fill_wavefront``: a single seeded flood with the ``"batched"``
  wavefront engine vs the ``"serial"`` per-patch reference;
- ``segment_volume_wavefront``: whole-volume segmentation on the macro
  shape, batched vs serial (the headline number);
- ``distributed_fanout``: ``distributed_segment`` on a process pool
  (``max_workers>1``) vs the in-process shard loop (``max_workers=1``);

— and writes a ``BENCH_<date>.json`` artifact recording wall times,
speedups, and SHA-256 output checksums, so successive PRs accumulate a
performance trajectory.  Checksums of the compared paths must match:
a speedup that changes the answer is a bug, not a win.

Timings use ``time.perf_counter`` (monotonic durations); the only
wall-clock read is the artifact's date stamp.  All inputs are seeded,
so the *outputs* (and their checksums) are deterministic even though
the timings are not.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import sys
import time
import typing as _t

import numpy as np

from repro._version import __version__
from repro.ml.conv3d import conv3d_forward, conv3d_forward_batch
from repro.ml.distributed_inference import distributed_segment
from repro.ml.ffn import FFNConfig, FFNModel
from repro.ml.inference import flood_fill, segment_volume
from repro.ml.training import FFNTrainer

__all__ = [
    "BenchRecord",
    "benchmark_world",
    "run_benchmarks",
    "write_artifact",
    "render_summary",
]


@dataclasses.dataclass
class BenchRecord:
    """One benchmark: a baseline path timed against an optimized path."""

    name: str
    baseline: str
    optimized: str
    baseline_seconds: float
    optimized_seconds: float
    checksum_baseline: str
    checksum_optimized: str
    meta: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.optimized_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.optimized_seconds

    @property
    def outputs_identical(self) -> bool:
        return self.checksum_baseline == self.checksum_optimized

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "optimized": self.optimized,
            "baseline_seconds": round(self.baseline_seconds, 6),
            "optimized_seconds": round(self.optimized_seconds, 6),
            "speedup": round(self.speedup, 3),
            "checksum_baseline": self.checksum_baseline,
            "checksum_optimized": self.checksum_optimized,
            "outputs_identical": self.outputs_identical,
            "meta": self.meta,
        }


def _checksum(arr: np.ndarray) -> str:
    """Shape/dtype-qualified SHA-256 of an array's exact bytes."""
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def _time_best(fn: _t.Callable[[], np.ndarray], repeat: int) -> tuple[float, np.ndarray]:
    """Best-of-``repeat`` wall time; returns (seconds, last output)."""
    best = float("inf")
    out: np.ndarray | None = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    assert out is not None
    return best, out


def _blob_volume(
    shape: tuple[int, int, int],
    centers: _t.Sequence[tuple[int, int, int]],
    radius: float = 4.0,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Bright spherical blobs on noise, plus the binary ground truth."""
    rng = np.random.default_rng(seed)
    zz, yy, xx = np.meshgrid(*map(np.arange, shape), indexing="ij")
    vol = rng.normal(0.0, noise, size=shape)
    truth = np.zeros(shape, dtype=np.uint8)
    for cz, cy, cx in centers:
        d2 = (zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2
        vol += 2.0 * np.exp(-d2 / (2 * radius**2))
        truth |= (d2 <= radius**2).astype(np.uint8)
    return vol.astype(np.float32), truth


def benchmark_world(smoke: bool = False, seed: int = 42) -> dict:
    """The seeded macro-benchmark fixture: a trained model + volumes.

    The model (weight-init seed, trainer seed, training volume) is
    **pinned**: the benchmark needs a network that actually floods, or
    every frontier degenerates to one FOV and the run measures nothing.
    ``seed`` varies only the macro volume's noise.  ``smoke`` shrinks
    every shape so the whole run finishes in seconds (the CI smoke job);
    the full shapes are the measured trajectory.
    """
    cfg = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=1)
    if smoke:
        train_steps = 25
        macro_shape = (12, 16, 16)
        macro_centers = ((5, 8, 8),)
        macro_radius = 3.0
        n_shards, flood_steps = 2, 64
    else:
        train_steps = 100
        macro_shape = (28, 48, 48)
        macro_centers = (
            (8, 12, 12), (14, 30, 30), (20, 12, 34),
            (8, 34, 14), (20, 36, 12), (14, 14, 38),
        )
        macro_radius = 5.0
        n_shards, flood_steps = 4, 256
    train_vol, train_truth = _blob_volume(
        (12, 16, 16), ((6, 8, 8),), radius=3.0, seed=0
    )
    model = FFNModel(cfg)
    FFNTrainer(model, seed=0).train(train_vol, train_truth,
                                    steps=train_steps)
    macro_vol, macro_truth = _blob_volume(
        macro_shape, macro_centers, radius=macro_radius, seed=seed + 7
    )
    return {
        "model": model,
        "macro_volume": macro_vol,
        "macro_truth": macro_truth,
        "macro_shape": macro_shape,
        "flood_seed": macro_centers[0],
        "flood_steps": flood_steps,
        "n_shards": n_shards,
        "smoke": smoke,
    }


def _bench_conv3d(smoke: bool, repeat: int, seed: int) -> BenchRecord:
    rng = np.random.default_rng(seed)
    n = 8 if smoke else 64
    c, o, side = (2, 6, 5) if smoke else (2, 8, 9)
    x = rng.normal(size=(n, c, side, side, side)).astype(np.float32)
    w = (rng.normal(size=(o, c, 3, 3, 3)) * 0.1).astype(np.float32)
    b = np.zeros(o, dtype=np.float32)

    def serial() -> np.ndarray:
        return np.stack([conv3d_forward(xi, w, b) for xi in x])

    def batched() -> np.ndarray:
        return conv3d_forward_batch(x, w, b)

    t_s, out_s = _time_best(serial, repeat)
    t_b, out_b = _time_best(batched, repeat)
    return BenchRecord(
        name="conv3d_batched",
        baseline="loop of conv3d_forward",
        optimized="conv3d_forward_batch",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={"batch": n, "channels": c, "filters": o, "side": side},
    )


def _bench_flood_fill(world: dict, repeat: int) -> BenchRecord:
    model, vol = world["model"], world["macro_volume"]
    seed_voxel, max_steps = world["flood_seed"], world["flood_steps"]

    def run(engine: str) -> _t.Callable[[], np.ndarray]:
        return lambda: flood_fill(
            model, vol, seed_voxel, max_steps=max_steps, engine=engine
        )

    t_s, out_s = _time_best(run("serial"), repeat)
    t_b, out_b = _time_best(run("batched"), repeat)
    return BenchRecord(
        name="flood_fill_wavefront",
        baseline="serial per-FOV forwards",
        optimized="wavefront-batched forwards",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={"volume": list(world["macro_shape"]), "max_steps": max_steps},
    )


def _bench_segment(world: dict, repeat: int) -> BenchRecord:
    model, vol = world["model"], world["macro_volume"]

    def run(engine: str) -> _t.Callable[[], np.ndarray]:
        return lambda: segment_volume(model, vol, max_objects=16,
                                      engine=engine)

    t_s, out_s = _time_best(run("serial"), repeat)
    t_b, out_b = _time_best(run("batched"), repeat)
    return BenchRecord(
        name="segment_volume_wavefront",
        baseline="serial flood-fill engine",
        optimized="wavefront-batched engine",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={
            "volume": list(world["macro_shape"]),
            "objects_found": int(out_b.max()),
        },
    )


def _bench_distributed(world: dict, repeat: int, max_workers: int) -> BenchRecord:
    model, vol = world["model"], world["macro_volume"]
    n_shards = world["n_shards"]

    def run(workers: int) -> _t.Callable[[], np.ndarray]:
        return lambda: distributed_segment(
            model, vol, n_workers=n_shards, halo=2, max_workers=workers
        )[0]

    t_s, out_s = _time_best(run(1), repeat)
    t_p, out_p = _time_best(run(max_workers), repeat)
    return BenchRecord(
        name="distributed_fanout",
        baseline="in-process shard loop (max_workers=1)",
        optimized=f"process-pool fan-out (max_workers={max_workers})",
        baseline_seconds=t_s,
        optimized_seconds=t_p,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_p),
        meta={
            "volume": list(world["macro_shape"]),
            "n_shards": n_shards,
            "max_workers": max_workers,
            "cpu_count": os.cpu_count(),
        },
    )


def _bench_loadtest(smoke: bool, seed: int) -> BenchRecord:
    """The control-plane overload drill as a determinism benchmark.

    Runs the multi-tenant loadtest twice on the same seed: the two
    checksums (over every workflow's structured outcome) must match, so
    a scheduler/gateway change that silently reorders or drops work
    fails the ``outputs_identical`` gate.  ``meta`` carries the
    scheduler throughput and p50/p99 scheduling-latency-per-class
    numbers into the BENCH_*.json trajectory.
    """
    from repro.loadgen import LoadgenConfig, run_loadtest

    if smoke:
        cfg = LoadgenConfig(n_tenants=8, workflows_per_tenant=2)
    else:
        cfg = LoadgenConfig(n_tenants=50, workflows_per_tenant=4)
    cfg.seed = seed

    t0 = time.perf_counter()
    first = run_loadtest(cfg)
    t_first = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = run_loadtest(cfg)
    t_second = time.perf_counter() - t0

    return BenchRecord(
        name="control_plane_loadtest",
        baseline="overload drill, run 1",
        optimized="overload drill, run 2 (same seed)",
        baseline_seconds=t_first,
        optimized_seconds=t_second,
        checksum_baseline=first.checksum()[:16],
        checksum_optimized=second.checksum()[:16],
        meta={
            "tenants": cfg.n_tenants,
            "workflows_per_tenant": cfg.workflows_per_tenant,
            "counts": first.counts,
            "lost": first.lost,
            "hung": first.hung,
            "scheduler_throughput_pods_per_s": round(
                first.scheduler_throughput, 4
            ),
            "latency_by_class": first.latency_by_class,
            "preemptions": first.preemptions,
            "peak_queue_depth": first.peak_queue_depth,
            "makespan_s": round(first.makespan_s, 1),
        },
    )


def run_benchmarks(
    smoke: bool = False,
    repeat: int = 2,
    max_workers: int | None = None,
    seed: int = 42,
) -> list[BenchRecord]:
    """Run every macro-benchmark and return the records."""
    if max_workers is None:
        max_workers = max(2, min(4, os.cpu_count() or 2))
    world = benchmark_world(smoke=smoke, seed=seed)
    return [
        _bench_conv3d(smoke, repeat, seed),
        _bench_flood_fill(world, repeat),
        _bench_segment(world, repeat),
        _bench_distributed(world, repeat, max_workers),
        _bench_loadtest(smoke, seed),
    ]


def write_artifact(
    records: _t.Sequence[BenchRecord],
    out_dir: "str | pathlib.Path" = ".",
    smoke: bool = False,
    date: str | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<date>.json`` into ``out_dir`` and return its path."""
    # The date stamp is the one intentional wall-clock read in this
    # module: the artifact names the day it measured.
    date = date or time.strftime("%Y-%m-%d")
    payload = {
        "schema": "repro-bench/v1",
        "version": __version__,
        "date": date,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "results": [r.to_json() for r in records],
    }
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{date}{'_smoke' if smoke else ''}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def render_summary(records: _t.Sequence[BenchRecord]) -> str:
    """A fixed-width table of the benchmark outcomes."""
    header = (
        f"{'benchmark':<26} {'baseline':>10} {'optimized':>10} "
        f"{'speedup':>8}  outputs"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.name:<26} {r.baseline_seconds:>9.3f}s "
            f"{r.optimized_seconds:>9.3f}s {r.speedup:>7.2f}x  "
            f"{'identical' if r.outputs_identical else 'DIFFER'}"
        )
    return "\n".join(lines)
