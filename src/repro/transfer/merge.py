"""Merging small NetCDF granules into large HDF files.

"each worker also merges the small individual files into larger
(Hierarchical Data Format) files for input into the FFN model and
transfers the larger file to the Ceph Object Store" (§III-A).

The merge itself is modelled as CPU work (per-file open/parse overhead +
per-byte copy cost) with a small container-format saving, since 112k tiny
files become a few hundred large ones.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.data.netcdf import NetCDFFile

__all__ = ["merged_hdf_size", "merge_cpu_seconds", "MergePlanner"]

#: Per-file parse/open overhead when merging (seconds of CPU).
PER_FILE_CPU_S = 0.004
#: Copy throughput of the merge loop (bytes per CPU-second).
MERGE_BYTES_PER_CPU_S = 400e6
#: Header overhead eliminated per merged-away file.
HEADER_SAVING_BYTES = NetCDFFile.HEADER_BYTES


def merged_hdf_size(file_sizes: _t.Sequence[float]) -> float:
    """Bytes of the merged HDF container for ``file_sizes`` granules.

    One container header survives; the rest of the per-file headers are
    saved.
    """
    if not file_sizes:
        return 0.0
    total = float(sum(file_sizes))
    return total - HEADER_SAVING_BYTES * (len(file_sizes) - 1)


def merge_cpu_seconds(file_sizes: _t.Sequence[float]) -> float:
    """CPU time to merge ``file_sizes`` granules into one HDF file."""
    total = float(sum(file_sizes))
    return PER_FILE_CPU_S * len(file_sizes) + total / MERGE_BYTES_PER_CPU_S


@dataclasses.dataclass
class MergePlan:
    """One output HDF file: which granule indices it contains."""

    output_name: str
    granule_indices: list[int]
    input_bytes: float
    output_bytes: float
    cpu_seconds: float


class MergePlanner:
    """Groups downloaded granules into merge batches.

    Parameters
    ----------
    files_per_merge:
        Granules per output HDF file.  The paper merges a worker's chunk
        as it completes; ~240 3-hourly granules (30 days) per output file
        matches the training volume granularity of §III-B.
    """

    def __init__(self, files_per_merge: int = 240):
        if files_per_merge < 1:
            raise ValueError("files_per_merge must be >= 1")
        self.files_per_merge = files_per_merge

    def plan(
        self, indices: _t.Sequence[int], sizes: _t.Mapping[int, float], worker: str
    ) -> list[MergePlan]:
        """Partition ``indices`` (with per-granule ``sizes``) into plans."""
        plans: list[MergePlan] = []
        ordered = sorted(indices)
        for start in range(0, len(ordered), self.files_per_merge):
            chunk = ordered[start : start + self.files_per_merge]
            chunk_sizes = [sizes[i] for i in chunk]
            plans.append(
                MergePlan(
                    output_name=(
                        f"merged/{worker}/ivt_{chunk[0]:06d}_{chunk[-1]:06d}.h5"
                    ),
                    granule_indices=list(chunk),
                    input_bytes=float(sum(chunk_sizes)),
                    output_bytes=merged_hdf_size(chunk_sizes),
                    cpu_seconds=merge_cpu_seconds(chunk_sizes),
                )
            )
        return plans
