"""Data-movement substrate: Redis-like queue, THREDDS, Aria2, merging.

Step 1 of the paper's workflow (§III-A) is built from four pieces, all
reproduced here:

- :class:`RedisQueue` — "The Redis queue was developed to keep track of
  which files were downloaded and to distribute the work across pods."
  Implements the reliable-queue pattern (pop moves the message to a
  per-worker processing list; unacked messages are re-enqueued), so a
  crashed worker's work is never lost.
- :class:`ThreddsServer` — "THREDDS provides a data subset tool that
  allows for selection of a variable within files": catalog lookup plus
  variable subsetting that shrinks 455 GB to 246 GB.
- :class:`Aria2Downloader` — "each worker uses the open source Aria2 file
  transfer software that allows multiple parallel downloads (20 parallel
  downloads in our case)": a connection-pooled bulk downloader whose
  connections are flows on the PRP network model.
- :mod:`repro.transfer.merge` — "each worker also merges the small
  individual files into larger (Hierarchical Data Format) files" before
  pushing them to the Ceph object store.
"""

from repro.transfer.queue import RedisQueue, QueueMessage
from repro.transfer.thredds import ThreddsServer, SubsetRequest
from repro.transfer.aria2 import Aria2Downloader, DownloadStats
from repro.transfer.merge import MergePlanner, merged_hdf_size, merge_cpu_seconds
from repro.transfer.retry import RetryPolicy, TransientFaultInjector, retry_call

__all__ = [
    "RedisQueue",
    "QueueMessage",
    "ThreddsServer",
    "SubsetRequest",
    "Aria2Downloader",
    "DownloadStats",
    "MergePlanner",
    "merged_hdf_size",
    "merge_cpu_seconds",
    "RetryPolicy",
    "TransientFaultInjector",
    "retry_call",
]
