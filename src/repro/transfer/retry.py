"""Retry policies and transient-fault injection for data transfers.

Production transfer stacks treat retries as a first-class policy object:
exponential backoff capped at a maximum delay, jitter to de-correlate
thundering herds, a bounded attempt count, and an overall per-request
deadline.  :class:`RetryPolicy` packages those knobs; the decorrelated
jitter follows the well-known AWS architecture-blog scheme
(``sleep = min(cap, uniform(base, prev_sleep * 3))``).

:class:`TransientFaultInjector` is the other half: a seeded source of
the server-side failures the policy exists to absorb — HTTP 5xx on the
catalog, request timeouts (the connection stalls, then dies), and
mid-stream connection resets that abort a transfer partway through.
Both halves are deterministic under a fixed seed, which is what lets
the chaos tests assert byte-for-byte identical fault schedules.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import NetworkError, TransferError, TransientServerError
from repro.sim.rng import derive_seed

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment

__all__ = ["RetryPolicy", "TransientFaultInjector", "retry_call"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient failures.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (so 1 disables retries).
    base_delay_s / multiplier / max_delay_s:
        Exponential-backoff shape: attempt ``k`` (0-based) is capped at
        ``min(max_delay_s, base_delay_s * multiplier**k)``.
    deadline_s:
        Optional wall-clock (sim-clock) budget for the whole request,
        spanning every attempt and backoff sleep.
    jitter:
        ``"decorrelated"`` (default), ``"full"`` (uniform in [0, cap]),
        or ``"none"`` (deterministic caps).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    deadline_s: float | None = None
    jitter: str = "decorrelated"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TransferError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise TransferError(
                "need 0 <= base_delay_s <= max_delay_s "
                f"(got {self.base_delay_s}, {self.max_delay_s})"
            )
        if self.multiplier < 1.0:
            raise TransferError("multiplier must be >= 1")
        if self.jitter not in ("decorrelated", "full", "none"):
            raise TransferError(f"unknown jitter mode {self.jitter!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise TransferError("deadline_s must be positive")

    def backoff_cap(self, attempt: int) -> float:
        """Upper bound of the backoff after 0-based ``attempt`` — monotone
        non-decreasing in the attempt number and never above
        ``max_delay_s``."""
        if attempt < 0:
            raise TransferError(f"attempt must be >= 0, got {attempt}")
        return min(
            self.max_delay_s, self.base_delay_s * self.multiplier**attempt
        )

    def backoff(
        self,
        attempt: int,
        rng: np.random.Generator | None = None,
        prev_delay_s: float | None = None,
    ) -> float:
        """The sleep before retrying after 0-based ``attempt`` failed.

        Always within ``[0, max_delay_s]``.  ``prev_delay_s`` feeds the
        decorrelated-jitter recurrence; pass each call's return value
        into the next.
        """
        cap = self.backoff_cap(attempt)
        if self.jitter == "none" or rng is None:
            return cap
        if self.jitter == "full":
            return float(rng.uniform(0.0, cap))
        # Decorrelated jitter: min(max, uniform(base, prev * 3)).
        prev = prev_delay_s if prev_delay_s else self.base_delay_s
        hi = max(self.base_delay_s, prev * 3.0)
        return float(
            min(self.max_delay_s, rng.uniform(self.base_delay_s, hi))
        )


class TransientFaultInjector:
    """Seeded source of transient server failures for THREDDS/aria2.

    Each *request* draws once from a single deterministic stream; under
    the FIFO-stable event kernel the draw order — and therefore the
    whole fault schedule — is identical run-to-run for a fixed seed.

    Parameters
    ----------
    seed:
        Root seed; the stream is derived so other subsystems' draws are
        unaffected.
    error_rate / timeout_rate / reset_rate:
        Per-request probabilities of an HTTP 5xx, a stalled-then-dead
        request, and a mid-stream connection reset.  Must sum to <= 1.
    stall_s:
        How long a timed-out request hangs before failing.
    max_faults / until_s:
        Optional limits: stop injecting after this many faults or past
        this simulation time (so workflows eventually converge).
    env:
        Optional environment for the ``until_s`` clock.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        reset_rate: float = 0.0,
        stall_s: float = 30.0,
        max_faults: int | None = None,
        until_s: float | None = None,
        env: "Environment | None" = None,
    ):
        total = error_rate + timeout_rate + reset_rate
        if min(error_rate, timeout_rate, reset_rate) < 0 or total > 1.0:
            raise TransferError(
                "fault rates must be non-negative and sum to <= 1, got "
                f"{(error_rate, timeout_rate, reset_rate)}"
            )
        self.rng = np.random.default_rng(derive_seed(seed, "transfer-faults"))
        self.error_rate = error_rate
        self.timeout_rate = timeout_rate
        self.reset_rate = reset_rate
        self.stall_s = stall_s
        self.max_faults = max_faults
        self.until_s = until_s
        self.env = env
        self.injected: dict[str, int] = {"error": 0, "timeout": 0, "reset": 0}

    # -- internals ------------------------------------------------------------

    def _armed(self) -> bool:
        if self.max_faults is not None and self.total_injected >= self.max_faults:
            return False
        if (
            self.until_s is not None
            and self.env is not None
            and self.env.now > self.until_s
        ):
            return False
        return True

    # -- draws ----------------------------------------------------------------

    def server_error(self) -> bool:
        """One catalog/metadata request: does the server 5xx it?"""
        if not self._armed():
            return False
        if self.rng.random() < self.error_rate:
            self.injected["error"] += 1
            return True
        return False

    def draw(self) -> tuple[str, float] | None:
        """One download request: ``None`` (healthy), ``("error", 0)``,
        ``("timeout", stall_s)``, or ``("reset", fraction_transferred)``."""
        if not self._armed():
            return None
        u = self.rng.random()
        if u < self.error_rate:
            self.injected["error"] += 1
            return ("error", 0.0)
        if u < self.error_rate + self.timeout_rate:
            self.injected["timeout"] += 1
            return ("timeout", self.stall_s)
        if u < self.error_rate + self.timeout_rate + self.reset_rate:
            self.injected["reset"] += 1
            # Reset lands somewhere mid-stream: 10–90 % of bytes made it.
            return ("reset", float(self.rng.uniform(0.1, 0.9)))
        return None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TransientFaultInjector injected={self.injected}>"


def retry_call(
    env: "Environment",
    fn: _t.Callable[[], _t.Any],
    policy: RetryPolicy | None,
    rng: np.random.Generator | None = None,
):
    """Generator helper: call ``fn`` under ``policy``, sleeping between
    attempts on the simulation clock.

    Use as ``result = yield from retry_call(env, fn, policy, rng)``.
    Retries :class:`TransferError`/:class:`NetworkError`; anything else
    propagates immediately.
    """
    attempts = policy.max_attempts if policy is not None else 1
    deadline_at = (
        env.now + policy.deadline_s
        if policy is not None and policy.deadline_s is not None
        else None
    )
    prev_delay: float | None = None
    for attempt in range(attempts):
        try:
            return fn()
        except (TransferError, NetworkError) as exc:
            if isinstance(exc, TransferError) and not isinstance(
                exc, TransientServerError
            ):
                # Permanent transfer errors (bad request, unknown
                # variable) don't benefit from retrying.
                raise
            if attempt + 1 >= attempts:
                raise
            delay = (
                policy.backoff(attempt, rng, prev_delay)
                if policy is not None
                else 0.0
            )
            if deadline_at is not None:
                remaining = deadline_at - env.now
                if remaining <= 0:
                    raise TransferError(
                        f"retry deadline exhausted after {attempt + 1} attempts"
                    ) from exc
                # Cap the drawn sleep by the remaining deadline budget:
                # a jittered draw that overshoots would otherwise forfeit
                # the final attempt the deadline still has room for.
                delay = min(delay, remaining)
            prev_delay = delay
            yield env.timeout(delay)
    raise TransferError("unreachable")  # pragma: no cover
