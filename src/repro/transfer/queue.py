"""A Redis-like reliable work queue.

Models the subset of Redis the paper's download job uses: a list of work
messages, atomic pop into a per-consumer processing list, acknowledgement,
and crash recovery by re-queueing unacked messages — plus simple
key-value state so workers can record which files completed ("developed
to keep track of which files were downloaded and to distribute the work
across pods", §III-A).

Operations are instantaneous in simulation time (queue round-trips are
negligible next to the downloads), but blocking pops integrate with the
kernel so idle workers genuinely wait.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import QueueEmptyError, TransferError
from repro.sim import Environment, Event, Store

__all__ = ["QueueMessage", "RedisQueue"]


@dataclasses.dataclass
class QueueMessage:
    """One unit of work (the paper's 'file of URLs' manifest chunk)."""

    id: int
    body: object
    enqueued_at: float
    attempts: int = 0


class RedisQueue:
    """A named reliable queue + key-value store."""

    def __init__(self, env: Environment, name: str = "downloads"):
        self.env = env
        self.name = name
        self._store: Store = Store(env)
        self._next_id = 0
        #: messages popped but not yet acked, by consumer name
        self.processing: dict[str, list[QueueMessage]] = {}
        #: simple SET/GET state (e.g. "done:<file>" markers)
        self.kv: dict[str, object] = {}
        self.enqueued_total = 0
        self.acked_total = 0
        self.requeued_total = 0

    # -- producer ---------------------------------------------------------------

    def push(self, body: object) -> QueueMessage:
        """LPUSH a message."""
        msg = QueueMessage(id=self._next_id, body=body, enqueued_at=self.env.now)
        self._next_id += 1
        self._store.put(msg)
        self.enqueued_total += 1
        return msg

    def push_all(self, bodies: _t.Iterable[object]) -> list[QueueMessage]:
        return [self.push(b) for b in bodies]

    # -- consumer ---------------------------------------------------------------

    def pop(self, consumer: str) -> Event:
        """Blocking RPOPLPUSH: yields the next message, recording it on the
        consumer's processing list until acked."""
        event = self.env.event()
        get_ev = self._store.get()

        def _deliver(ev):
            if not ev.ok:  # pragma: no cover - store gets cannot fail
                event.fail(ev.value)
                return
            msg: QueueMessage = ev.value
            msg.attempts += 1
            self.processing.setdefault(consumer, []).append(msg)
            event.succeed(msg)

        if get_ev.processed:  # pragma: no cover - store resolves via callback
            _deliver(get_ev)
        else:
            get_ev.callbacks.append(_deliver)
        return event

    def try_pop(self, consumer: str) -> QueueMessage:
        """Non-blocking RPOP; raises :class:`QueueEmptyError` when empty."""
        if not self._store.items:
            raise QueueEmptyError(f"queue {self.name!r} is empty")
        msg: QueueMessage = self._store.items.pop(0)
        msg.attempts += 1
        self.processing.setdefault(consumer, []).append(msg)
        return msg

    def ack(self, consumer: str, msg: QueueMessage) -> None:
        """Acknowledge completion; removes from the processing list."""
        pending = self.processing.get(consumer, [])
        if msg not in pending:
            raise TransferError(
                f"consumer {consumer!r} acking message {msg.id} it does not hold"
            )
        pending.remove(msg)
        self.acked_total += 1

    def recover(self, consumer: str) -> int:
        """Re-queue everything a crashed consumer held; returns the count.

        This is what makes the Kubernetes Job + queue combination safe:
        "The Job also handles creating pods on different nodes if pods are
        shut down by the system or crash" (§III-A) — the replacement pod
        finds the lost work back on the queue.
        """
        lost = self.processing.pop(consumer, [])
        for msg in lost:
            self._store.put(msg)
            self.requeued_total += 1
        return len(lost)

    # -- state -------------------------------------------------------------------

    def set(self, key: str, value: object) -> None:
        self.kv[key] = value

    def get(self, key: str, default: object = None) -> object:
        return self.kv.get(key, default)

    def __len__(self) -> int:
        """Messages currently waiting (not counting processing)."""
        return len(self._store.items)

    @property
    def in_flight(self) -> int:
        return sum(len(v) for v in self.processing.values())

    @property
    def drained(self) -> bool:
        """True when no work is queued or in flight."""
        return len(self) == 0 and self.in_flight == 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RedisQueue {self.name}: {len(self)} queued, "
            f"{self.in_flight} in-flight, {self.acked_total} acked>"
        )
