"""An Aria2-like parallel downloader.

"each worker uses the open source Aria2 file transfer software that
allows multiple parallel downloads (20 parallel downloads in our case) to
retrieve urls stored in a list of data files" (§III-A).

The downloader owns a pool of connection slots; each file download is a
flow across the THREDDS server's network path, so 20 concurrent
connections genuinely contend for (and saturate) the NIC/WAN — giving the
link-bounded behaviour of Figure 4.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import (
    NetworkError,
    NoRouteError,
    TransferError,
    TransientServerError,
)
from repro.netsim.flows import FlowSimulator
from repro.netsim.topology import Topology
from repro.sim import Environment, Resource
from repro.sim.rng import derive_seed
from repro.transfer.retry import RetryPolicy, TransientFaultInjector
from repro.transfer.thredds import SubsetRequest, ThreddsServer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.metrics import MetricRegistry
    from repro.tracing.span import Span, Tracer

__all__ = ["DownloadStats", "Aria2Downloader"]


@dataclasses.dataclass
class DownloadStats:
    """What one ``download_batch`` moved."""

    files: int = 0
    bytes: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate_Bps(self) -> float:
        return self.bytes / self.duration if self.duration > 0 else 0.0


class Aria2Downloader:
    """Connection-pooled downloader bound to one worker host.

    Parameters
    ----------
    env, flowsim, topology:
        Simulation plumbing.
    server:
        The THREDDS server to pull from.
    host:
        The worker's hostname on the topology (its NIC bounds throughput).
    connections:
        Maximum concurrent downloads (aria2's ``-j``; the paper uses 20).
    retry_policy:
        Optional :class:`~repro.transfer.retry.RetryPolicy`.  Without
        one, any transfer fault propagates on first occurrence (aria2's
        ``--max-tries=1``); with one, transient server errors, stalls,
        resets, and routing outages back off and retry, and each request
        honours the policy's per-request ``deadline_s``.
    fault_injector:
        Optional transient-fault source; defaults to the server's own
        injector so one seeded schedule covers catalog and stream.
    metrics:
        Optional registry; retries/failures are exported as
        ``transfer_retries_total`` / ``transfer_failures_total``.
    on_progress:
        Optional zero-arg callback invoked after each completed file —
        the hook pods use to heartbeat their liveness probe while a long
        batch is moving.
    """

    def __init__(
        self,
        env: Environment,
        flowsim: FlowSimulator,
        topology: Topology,
        server: ThreddsServer,
        host: str,
        connections: int = 20,
        coalesce_threshold: int = 0,
        retry_policy: RetryPolicy | None = None,
        fault_injector: TransientFaultInjector | None = None,
        metrics: "MetricRegistry | None" = None,
        on_progress: _t.Callable[[], None] | None = None,
        seed: int = 0,
        tracer: "Tracer | None" = None,
        span_parent: "Span | None" = None,
    ):
        if connections < 1:
            raise ValueError("connections must be >= 1")
        self.env = env
        self.flowsim = flowsim
        self.topology = topology
        self.server = server
        self.host = host
        self.connections = connections
        #: When a batch holds more than this many files (and the feature
        #: is enabled, > 0), each connection streams its share as ONE
        #: flow with the per-file overheads summed — byte- and
        #: overhead-exact, but with O(connections) instead of O(files)
        #: simulator events.  Essential at the paper's 112k-file scale.
        self.coalesce_threshold = coalesce_threshold
        self.retry_policy = retry_policy
        self.fault_injector = (
            fault_injector
            if fault_injector is not None
            else getattr(server, "fault_injector", None)
        )
        self.metrics = metrics
        self.on_progress = on_progress
        #: optional span tracer + parent span: each connection's fetch
        #: (slot wait + request + flow) becomes one ``transfer`` span
        #: carrying bytes and achieved rate.
        self.tracer = tracer
        self.span_parent = span_parent
        self._rng = np.random.default_rng(derive_seed(seed, "aria2", host))
        self._slots = Resource(env, capacity=connections)
        self.total_stats = DownloadStats()
        self.retries_total = 0
        self.failures_total = 0

    # -- fault-aware request engine -----------------------------------------

    def _count(self, metric: str) -> None:
        if self.metrics is not None:
            self.metrics.inc_counter(metric, 1.0, {"host": self.host})

    def _span_open(self, name: str, nbytes: float) -> "Span | None":
        if self.tracer is None:
            return None
        return self.tracer.start(
            name,
            "transfer",
            parent=self.span_parent,
            attributes={"bytes": float(nbytes), "host": self.host},
        )

    def _span_close(
        self, span: "Span | None", nbytes: float, status: str = "ok"
    ) -> None:
        if span is None or self.tracer is None:
            return
        self.tracer.finish(span, status=status)
        if status == "ok" and span.duration > 0:
            span.attributes["rate_Bps"] = nbytes / span.duration

    def _transfer_or_deadline(
        self, nbytes: float, name: str, deadline_at: float | None
    ):
        """One flow across the server->host path, bounded by the
        per-request deadline: a flow still in the air at the deadline is
        cancelled (capacity released) and the attempt fails."""
        path = self.topology.path_resources(self.server.host, self.host)
        latency = self.topology.path_latency(self.server.host, self.host)
        done = self.flowsim.transfer(
            path, nbytes, latency_s=latency, name=name
        )
        if deadline_at is None:
            yield done
            return
        budget = deadline_at - self.env.now
        if budget <= 0:
            self.flowsim.cancel(done)
            raise TransferError(f"{name}: request deadline exhausted")
        yield self.env.any_of([done, self.env.timeout(budget)])
        if not done.triggered:
            self.flowsim.cancel(done)
            raise TransferError(
                f"{name}: deadline of {self.retry_policy.deadline_s}s exceeded"
            )

    def _attempt(
        self,
        state: dict,
        name: str,
        overhead_s: float,
        deadline_at: float | None,
    ):
        """One try at moving ``state['remaining']`` bytes, with an
        injected transient fault when the schedule says so.  Resets keep
        their partial bytes: the next attempt resumes from the offset,
        exactly like ``aria2c -c``."""
        fault = (
            self.fault_injector.draw()
            if self.fault_injector is not None
            else None
        )
        if fault is not None and fault[0] == "error":
            yield self.env.timeout(overhead_s)
            raise TransientServerError(f"{name}: HTTP 503 from {self.server.host}")
        if fault is not None and fault[0] == "timeout":
            stall = fault[1]
            if deadline_at is not None:
                stall = min(stall, max(0.0, deadline_at - self.env.now))
            yield self.env.timeout(overhead_s + stall)
            raise TransientServerError(
                f"{name}: request stalled {fault[1]}s and timed out"
            )
        yield self.env.timeout(overhead_s)
        if fault is not None and fault[0] == "reset":
            part = state["remaining"] * fault[1]
            yield from self._transfer_or_deadline(
                part, f"{name}:partial", deadline_at
            )
            state["remaining"] -= part
            raise TransientServerError(
                f"{name}: connection reset with {state['remaining']:.0f}B left"
            )
        yield from self._transfer_or_deadline(
            state["remaining"], name, deadline_at
        )
        state["remaining"] = 0.0

    def _fetch(self, nbytes: float, name: str, overhead_s: float):
        """One logical request under the retry policy (generator)."""
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        deadline_at = (
            self.env.now + policy.deadline_s
            if policy is not None and policy.deadline_s is not None
            else None
        )
        state = {"remaining": float(nbytes)}
        prev_delay: float | None = None
        for attempt in range(attempts):
            try:
                yield from self._attempt(state, name, overhead_s, deadline_at)
                return
            except (TransientServerError, NoRouteError, NetworkError) as exc:
                if attempt + 1 >= attempts:
                    self.failures_total += 1
                    self._count("transfer_failures_total")
                    raise TransferError(
                        f"{name}: giving up after {attempt + 1} attempts: {exc}"
                    ) from exc
                delay = policy.backoff(attempt, self._rng, prev_delay) if policy else 0.0
                prev_delay = delay
                if deadline_at is not None and self.env.now + delay >= deadline_at:
                    self.failures_total += 1
                    self._count("transfer_failures_total")
                    raise TransferError(
                        f"{name}: retry budget exhausted after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                self.retries_total += 1
                self._count("transfer_retries_total")
                yield self.env.timeout(delay)

    def _download_one(self, request: SubsetRequest):
        """One connection: overhead + flow across the server->host path."""
        span = self._span_open(
            f"download:{request.granule.name}", request.nbytes
        )
        try:
            with self._slots.request() as slot:
                yield slot
                yield from self._fetch(
                    request.nbytes,
                    f"aria2:{self.host}:{request.granule.name}",
                    self.server.request_overhead_s,
                )
        except BaseException:
            self._span_close(span, request.nbytes, status="error")
            raise
        self._span_close(span, request.nbytes)
        self.total_stats.files += 1
        self.total_stats.bytes += request.nbytes
        if self.on_progress is not None:
            self.on_progress()

    def _download_stream(self, requests: _t.Sequence[SubsetRequest]):
        """One connection streaming many files back-to-back: summed
        request overheads + one flow carrying the combined payload."""
        total = sum(r.nbytes for r in requests)
        span = self._span_open(
            f"stream:{self.host}:{len(requests)}f", total
        )
        try:
            with self._slots.request() as slot:
                yield slot
                yield from self._fetch(
                    total,
                    f"aria2-stream:{self.host}:{len(requests)}f",
                    self.server.request_overhead_s * len(requests),
                )
        except BaseException:
            self._span_close(span, total, status="error")
            raise
        self._span_close(span, total)
        self.total_stats.files += len(requests)
        self.total_stats.bytes += total
        if self.on_progress is not None:
            self.on_progress()

    def download_batch(self, requests: _t.Sequence[SubsetRequest]):
        """Generator process: download all ``requests`` with up to
        ``connections`` in flight; returns a :class:`DownloadStats`.

        Use as ``stats = yield env.process(dl.download_batch(reqs))`` or
        ``yield from`` inside another generator.
        """
        stats = DownloadStats(started_at=self.env.now)
        threshold = self.coalesce_threshold
        if threshold and len(requests) > max(threshold, self.connections):
            # Round-robin the files across connections so each stream
            # carries a near-equal byte share.
            groups: list[list[SubsetRequest]] = [
                list(requests[k :: self.connections])
                for k in range(self.connections)
            ]
            procs = [
                self.env.process(
                    self._download_stream(group),
                    name=f"aria2-stream:{self.host}:{k}",
                )
                for k, group in enumerate(groups)
                if group
            ]
        else:
            procs = [
                self.env.process(
                    self._download_one(req), name=f"aria2-conn:{req.granule.index}"
                )
                for req in requests
            ]
        if procs:
            yield self.env.all_of(procs)
        stats.files = len(requests)
        stats.bytes = sum(r.nbytes for r in requests)
        stats.finished_at = self.env.now
        return stats
