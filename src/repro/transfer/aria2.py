"""An Aria2-like parallel downloader.

"each worker uses the open source Aria2 file transfer software that
allows multiple parallel downloads (20 parallel downloads in our case) to
retrieve urls stored in a list of data files" (§III-A).

The downloader owns a pool of connection slots; each file download is a
flow across the THREDDS server's network path, so 20 concurrent
connections genuinely contend for (and saturate) the NIC/WAN — giving the
link-bounded behaviour of Figure 4.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.netsim.flows import FlowSimulator
from repro.netsim.topology import Topology
from repro.sim import Environment, Resource
from repro.transfer.thredds import SubsetRequest, ThreddsServer

__all__ = ["DownloadStats", "Aria2Downloader"]


@dataclasses.dataclass
class DownloadStats:
    """What one ``download_batch`` moved."""

    files: int = 0
    bytes: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_rate_Bps(self) -> float:
        return self.bytes / self.duration if self.duration > 0 else 0.0


class Aria2Downloader:
    """Connection-pooled downloader bound to one worker host.

    Parameters
    ----------
    env, flowsim, topology:
        Simulation plumbing.
    server:
        The THREDDS server to pull from.
    host:
        The worker's hostname on the topology (its NIC bounds throughput).
    connections:
        Maximum concurrent downloads (aria2's ``-j``; the paper uses 20).
    """

    def __init__(
        self,
        env: Environment,
        flowsim: FlowSimulator,
        topology: Topology,
        server: ThreddsServer,
        host: str,
        connections: int = 20,
        coalesce_threshold: int = 0,
    ):
        if connections < 1:
            raise ValueError("connections must be >= 1")
        self.env = env
        self.flowsim = flowsim
        self.topology = topology
        self.server = server
        self.host = host
        self.connections = connections
        #: When a batch holds more than this many files (and the feature
        #: is enabled, > 0), each connection streams its share as ONE
        #: flow with the per-file overheads summed — byte- and
        #: overhead-exact, but with O(connections) instead of O(files)
        #: simulator events.  Essential at the paper's 112k-file scale.
        self.coalesce_threshold = coalesce_threshold
        self._slots = Resource(env, capacity=connections)
        self.total_stats = DownloadStats()

    def _download_one(self, request: SubsetRequest):
        """One connection: overhead + flow across the server->host path."""
        with self._slots.request() as slot:
            yield slot
            yield self.env.timeout(self.server.request_overhead_s)
            path = self.topology.path_resources(self.server.host, self.host)
            yield self.flowsim.transfer(
                path,
                request.nbytes,
                latency_s=self.topology.path_latency(self.server.host, self.host),
                name=f"aria2:{self.host}:{request.granule.name}",
            )
        self.total_stats.files += 1
        self.total_stats.bytes += request.nbytes

    def _download_stream(self, requests: _t.Sequence[SubsetRequest]):
        """One connection streaming many files back-to-back: summed
        request overheads + one flow carrying the combined payload."""
        with self._slots.request() as slot:
            yield slot
            yield self.env.timeout(self.server.request_overhead_s * len(requests))
            path = self.topology.path_resources(self.server.host, self.host)
            total = sum(r.nbytes for r in requests)
            yield self.flowsim.transfer(
                path,
                total,
                latency_s=self.topology.path_latency(self.server.host, self.host),
                name=f"aria2-stream:{self.host}:{len(requests)}f",
            )
        self.total_stats.files += len(requests)
        self.total_stats.bytes += total

    def download_batch(self, requests: _t.Sequence[SubsetRequest]):
        """Generator process: download all ``requests`` with up to
        ``connections`` in flight; returns a :class:`DownloadStats`.

        Use as ``stats = yield env.process(dl.download_batch(reqs))`` or
        ``yield from`` inside another generator.
        """
        stats = DownloadStats(started_at=self.env.now)
        threshold = self.coalesce_threshold
        if threshold and len(requests) > max(threshold, self.connections):
            # Round-robin the files across connections so each stream
            # carries a near-equal byte share.
            groups: list[list[SubsetRequest]] = [
                list(requests[k :: self.connections])
                for k in range(self.connections)
            ]
            procs = [
                self.env.process(
                    self._download_stream(group),
                    name=f"aria2-stream:{self.host}:{k}",
                )
                for k, group in enumerate(groups)
                if group
            ]
        else:
            procs = [
                self.env.process(
                    self._download_one(req), name=f"aria2-conn:{req.granule.index}"
                )
                for req in requests
            ]
        if procs:
            yield self.env.all_of(procs)
        stats.files = len(requests)
        stats.bytes = sum(r.nbytes for r in requests)
        stats.finished_at = self.env.now
        return stats
