"""A THREDDS-like data server.

"THREDDS is a web server that provides metadata and data access for
scientific datasets using a variety of remote data access protocols"
(§III-A).  The server fronts a :class:`~repro.data.catalog.MerraArchive`,
answers catalog queries, and — crucially — implements the **NetCDF subset
service**: requesting only the IVT-relevant variables returns the
granule's subset size (246 GB total) instead of the full file (455 GB),
"greatly increasing the speed at which data is transferred".

The server is attached to a host on the PRP topology; actual byte
movement happens in :class:`~repro.transfer.aria2.Aria2Downloader`
through the flow engine, bounded by this server's NIC and a configurable
per-request service overhead.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.data.catalog import GranuleInfo, MerraArchive
from repro.errors import TransferError, TransientServerError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.transfer.retry import TransientFaultInjector

__all__ = ["SubsetRequest", "ThreddsServer"]


@dataclasses.dataclass(frozen=True)
class SubsetRequest:
    """A resolved download: what to fetch and how many bytes it is."""

    granule: GranuleInfo
    variables: tuple[str, ...] | None  # None = whole file
    nbytes: float
    url: str


class ThreddsServer:
    """Catalog + subset service for the MERRA archive.

    Parameters
    ----------
    archive:
        The granule catalog to serve.
    host:
        Hostname on the network topology (a PRP DTN: the paper's server
        lived at ``its-dtn-02.prism.optiputer.net``).
    request_overhead_s:
        Server-side latency per request (catalog lookup + subset setup).
    fault_injector:
        Optional :class:`~repro.transfer.retry.TransientFaultInjector`;
        when armed, catalog/subset calls raise
        :class:`~repro.errors.TransientServerError` at the injector's
        seeded rate, and downloaders consult it for stream faults.
    """

    #: Variables the subset service can extract (IVT inputs).
    SUBSET_VARIABLES = ("U", "V", "QV")

    def __init__(
        self,
        archive: MerraArchive,
        host: str = "its-dtn-02",
        request_overhead_s: float = 0.05,
        generator: object | None = None,
        fault_injector: "TransientFaultInjector | None" = None,
    ):
        self.archive = archive
        self.host = host
        self.request_overhead_s = request_overhead_s
        #: Optional :class:`~repro.data.merra.MerraGenerator` enabling
        #: :meth:`open_granule` to serve real array content.
        self.generator = generator
        self.fault_injector = fault_injector
        self.requests_served = 0
        self.bytes_served = 0.0
        self.errors_served = 0

    def _maybe_fail(self, what: str) -> None:
        if self.fault_injector is not None and self.fault_injector.server_error():
            self.errors_served += 1
            raise TransientServerError(f"THREDDS {self.host}: 503 on {what}")

    # -- catalog ------------------------------------------------------------------

    def catalog_size(self) -> int:
        return len(self.archive)

    def catalog_page(self, start: int, count: int) -> list[GranuleInfo]:
        """A page of the catalog (what the manifest builder walks)."""
        end = min(start + count, len(self.archive))
        if start < 0 or start > len(self.archive):
            raise TransferError(f"bad catalog page start {start}")
        return [self.archive.granule(i) for i in range(start, end)]

    # -- subset service --------------------------------------------------------------

    def resolve(
        self, index: int, variables: _t.Sequence[str] | None = None
    ) -> SubsetRequest:
        """Resolve a granule (optionally variable-subset) into a request.

        ``variables=None`` fetches the whole file; naming a subset of
        :data:`SUBSET_VARIABLES` fetches only those fields' bytes.
        """
        self._maybe_fail(f"resolve({index})")
        return self._resolve_one(index, variables)

    def _resolve_one(
        self, index: int, variables: _t.Sequence[str] | None = None
    ) -> SubsetRequest:
        granule = self.archive.granule(index)
        if variables is None:
            nbytes = granule.full_bytes
            vars_tuple = None
        else:
            unknown = set(variables) - set(self.SUBSET_VARIABLES)
            if unknown:
                raise TransferError(
                    f"subset service cannot extract {sorted(unknown)}; "
                    f"available: {self.SUBSET_VARIABLES}"
                )
            # The catalog's subset size covers all three IVT variables;
            # fewer variables scale proportionally.
            fraction = len(set(variables)) / len(self.SUBSET_VARIABLES)
            nbytes = granule.subset_bytes * fraction
            vars_tuple = tuple(variables)
        self.requests_served += 1
        self.bytes_served += nbytes
        return SubsetRequest(
            granule=granule,
            variables=vars_tuple,
            nbytes=nbytes,
            url=granule.url(server=self.host),
        )

    def resolve_many(
        self, indices: _t.Sequence[int], variables: _t.Sequence[str] | None = None
    ) -> list[SubsetRequest]:
        """Resolve a manifest chunk's worth of granules.

        One server round-trip: the transient-fault draw happens once for
        the whole chunk, not per granule.
        """
        self._maybe_fail(f"resolve_many({len(indices)} granules)")
        return [self._resolve_one(i, variables) for i in indices]

    # -- content service ------------------------------------------------------------

    def open_granule(self, index: int, variables: _t.Sequence[str] | None = None):
        """Serve the *content* of a granule as a NetCDF-like file.

        Requires the server to have been built with a
        :class:`~repro.data.merra.MerraGenerator` (laptop-scale runs);
        the subset service drops every variable not requested, exactly
        like the catalog-level :meth:`resolve` drops their bytes.
        """
        if self.generator is None:
            raise TransferError(
                "this THREDDS server has no data generator attached "
                "(catalog-only mode)"
            )
        self._maybe_fail(f"open_granule({index})")
        granule_info = self.archive.granule(index)  # validates the index
        granule = self.generator.granule(index, name=granule_info.name)
        self.requests_served += 1
        if variables is None:
            self.bytes_served += granule.nbytes
            return granule
        unknown = set(variables) - set(self.SUBSET_VARIABLES)
        if unknown:
            raise TransferError(
                f"subset service cannot extract {sorted(unknown)}; "
                f"available: {self.SUBSET_VARIABLES}"
            )
        subset = granule.subset(list(variables))
        self.bytes_served += subset.nbytes
        return subset

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ThreddsServer {self.host}: {len(self.archive)} granules, "
            f"{self.requests_served} requests served>"
        )
