"""Unit tests for the NetCDF-like container."""

import numpy as np
import pytest

from repro.data import NetCDFFile
from repro.errors import ShapeError


class TestVariables:
    def test_data_variable(self):
        f = NetCDFFile("f.nc4")
        v = f.add_variable("T", ("lat", "lon"), data=np.zeros((4, 8), np.float32))
        assert v.shape == (4, 8)
        assert v.nbytes == 4 * 8 * 4

    def test_lazy_variable(self):
        f = NetCDFFile("f.nc4")
        v = f.add_variable("T", ("lev", "lat", "lon"), shape=(42, 361, 576))
        assert v.data is None
        assert v.nbytes == 42 * 361 * 576 * 4

    def test_dtype_respected_for_lazy(self):
        f = NetCDFFile("f.nc4")
        v = f.add_variable("mask", ("y",), shape=(100,), dtype="uint8")
        assert v.nbytes == 100

    def test_dims_shape_mismatch_rejected(self):
        f = NetCDFFile("f.nc4")
        with pytest.raises(ShapeError):
            f.add_variable("T", ("lat",), shape=(4, 8))

    def test_data_shape_conflict_rejected(self):
        f = NetCDFFile("f.nc4")
        with pytest.raises(ShapeError):
            f.add_variable("T", ("lat", "lon"), data=np.zeros((2, 2)), shape=(3, 3))

    def test_needs_data_or_shape(self):
        f = NetCDFFile("f.nc4")
        with pytest.raises(ShapeError):
            f.add_variable("T", ("lat",))

    def test_duplicate_variable_rejected(self):
        f = NetCDFFile("f.nc4")
        f.add_variable("T", ("x",), shape=(1,))
        with pytest.raises(ShapeError):
            f.add_variable("T", ("x",), shape=(1,))


class TestSubsetting:
    @pytest.fixture
    def granule(self):
        f = NetCDFFile("g.nc4")
        for name in ("U", "V", "QV", "T", "H"):
            f.add_variable(name, ("lev", "lat", "lon"), shape=(8, 10, 20))
        return f

    def test_subset_keeps_only_named(self, granule):
        sub = granule.subset(["U", "V", "QV"])
        assert sorted(sub.variables) == ["QV", "U", "V"]

    def test_subset_reduces_bytes(self, granule):
        sub = granule.subset(["U"])
        assert sub.nbytes < granule.nbytes
        payload = granule.variables["U"].nbytes
        assert sub.nbytes == payload + NetCDFFile.HEADER_BYTES

    def test_subset_unknown_variable_raises(self, granule):
        with pytest.raises(KeyError):
            granule.subset(["GHOST"])

    def test_contains(self, granule):
        assert "U" in granule
        assert "GHOST" not in granule
