"""Tests for the archive catalog and TFRecord serialization."""

import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import MerraArchive, TFRecordReader, TFRecordWriter, VolumeExample
from repro.data.catalog import PAPER_FILE_COUNT, PAPER_FULL_BYTES, PAPER_SUBSET_BYTES
from repro.errors import MLError


class TestMerraArchive:
    def test_calendar_exact_count_matches_paper(self):
        """§III-A: 112,249 NetCDF files, 3-hourly, 1980-01-01..2018-05-31."""
        archive = MerraArchive()
        assert len(archive) == PAPER_FILE_COUNT
        assert archive.calendar_exact

    def test_totals_match_paper(self):
        archive = MerraArchive()
        assert archive.total_full_bytes == pytest.approx(PAPER_FULL_BYTES)
        assert archive.total_subset_bytes == pytest.approx(PAPER_SUBSET_BYTES)
        # Per-file sizes sum back to the totals exactly.
        total = sum(g.subset_bytes for g in archive.granules() if g.index < 0)
        assert total == 0  # generator path exercised below at small scale

    def test_small_archive_scales_proportionally(self):
        small = MerraArchive(n_files=1000)
        assert small.total_subset_bytes == pytest.approx(
            PAPER_SUBSET_BYTES * 1000 / PAPER_FILE_COUNT
        )
        total = sum(g.subset_bytes for g in small.granules())
        assert total == pytest.approx(small.total_subset_bytes)

    def test_subset_ratio_matches_paper(self):
        assert MerraArchive(n_files=10).subset_ratio() == pytest.approx(
            246 / 455, rel=1e-6
        )

    def test_timestamps_are_3_hourly(self):
        archive = MerraArchive(n_files=100)
        a, b = archive.granule(0), archive.granule(1)
        assert a.timestamp == datetime.datetime(1980, 1, 1)
        assert (b.timestamp - a.timestamp) == datetime.timedelta(hours=3)

    def test_granule_names_unique(self):
        archive = MerraArchive(n_files=500)
        names = {g.name for g in archive.granules()}
        assert len(names) == 500

    def test_url_contains_collection(self):
        g = MerraArchive(n_files=1).granule(0)
        assert "M2I3NPASM" in g.url()

    def test_index_bounds(self):
        archive = MerraArchive(n_files=10)
        with pytest.raises(IndexError):
            archive.granule(10)
        with pytest.raises(IndexError):
            archive.granule(-1)

    def test_deterministic_sizes(self):
        a = MerraArchive(n_files=50, seed=4).granule(7)
        b = MerraArchive(n_files=50, seed=4).granule(7)
        assert a.full_bytes == b.full_bytes

    def test_manifest_chunks_partition_everything(self):
        archive = MerraArchive(n_files=103)
        chunks = archive.manifest_chunks(10)
        assert len(chunks) == 10
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(103))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            MerraArchive(n_files=0)
        with pytest.raises(ValueError):
            MerraArchive(n_files=10).manifest_chunks(0)


class TestTFRecord:
    def _example(self, shape=(4, 5, 6), seed=0):
        rng = np.random.default_rng(seed)
        return VolumeExample(
            volume=rng.normal(size=shape).astype(np.float32),
            label=(rng.uniform(size=shape) > 0.5).astype(np.uint8),
            meta={"t0": 12, "shard": "a"},
        )

    def test_roundtrip_single(self):
        ex = self._example()
        w = TFRecordWriter()
        w.write(ex)
        (back,) = TFRecordReader(w.getvalue()).read_all()
        np.testing.assert_array_equal(back.volume, ex.volume)
        np.testing.assert_array_equal(back.label, ex.label)
        assert back.meta == {"t0": 12, "shard": "a"}

    def test_roundtrip_many(self):
        w = TFRecordWriter()
        for i in range(5):
            w.write(self._example(seed=i))
        records = TFRecordReader(w.getvalue()).read_all()
        assert len(records) == 5
        assert w.records_written == 5

    def test_corruption_detected(self):
        w = TFRecordWriter()
        w.write(self._example())
        blob = bytearray(w.getvalue())
        blob[len(blob) // 2] ^= 0xFF  # flip a payload bit
        with pytest.raises(MLError):
            TFRecordReader(bytes(blob)).read_all()

    def test_bad_magic_detected(self):
        with pytest.raises(MLError):
            TFRecordReader(b"XXXX" + b"\x00" * 16).read_all()

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(MLError):
            VolumeExample(volume=np.zeros((2, 2)), label=np.zeros((3, 3)))

    @settings(max_examples=25, deadline=None)
    @given(
        vol=arrays(
            dtype=np.float32,
            shape=st.tuples(
                st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
            ),
            elements=st.floats(-1e6, 1e6, width=32),
        )
    )
    def test_property_roundtrip_exact(self, vol):
        ex = VolumeExample(
            volume=vol, label=np.zeros_like(vol, dtype=np.uint8), meta={"k": 1}
        )
        w = TFRecordWriter()
        w.write(ex)
        (back,) = TFRecordReader(w.getvalue()).read_all()
        np.testing.assert_array_equal(back.volume, vol)
