"""Tests for the synthetic MERRA generator and IVT computation."""

import numpy as np
import pytest

from repro.data import GridSpec, MerraGenerator, PAPER_GRID
from repro.data.ivt import integrated_vapor_transport, ivt_magnitude
from repro.errors import ShapeError


@pytest.fixture(scope="module")
def gen():
    return MerraGenerator(GridSpec(nlat=45, nlon=72, nlev=8), seed=7)


class TestGridSpec:
    def test_paper_grid_matches_paper(self):
        """§III: 576x361 pixels, 42 vertical levels."""
        assert PAPER_GRID.nlon == 576
        assert PAPER_GRID.nlat == 361
        assert PAPER_GRID.nlev == 42

    def test_level_range(self):
        levels = PAPER_GRID.levels_hpa
        assert levels[0] == pytest.approx(1000.0)
        assert levels[-1] == pytest.approx(0.1)
        assert np.all(np.diff(levels) < 0)


class TestGenerator:
    def test_field_shapes(self, gen):
        f = gen.fields(0)
        assert f["U"].shape == (8, 45, 72)
        assert f["PS"].shape == (45, 72)
        assert f["U"].dtype == np.float32

    def test_deterministic_across_instances(self):
        grid = GridSpec(nlat=20, nlon=30, nlev=4)
        a = MerraGenerator(grid, seed=3).fields(5)["QV"]
        b = MerraGenerator(grid, seed=3).fields(5)["QV"]
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_fields(self):
        grid = GridSpec(nlat=20, nlon=30, nlev=4)
        a = MerraGenerator(grid, seed=1).fields(0)["U"]
        b = MerraGenerator(grid, seed=2).fields(0)["U"]
        assert not np.array_equal(a, b)

    def test_humidity_nonnegative_and_decays_with_height(self, gen):
        qv = gen.fields(0)["QV"]
        assert np.all(qv >= 0)
        assert qv[0].mean() > qv[-1].mean()  # surface wetter than top

    def test_temporal_coherence(self, gen):
        """Adjacent 3-hourly steps must be much more similar than distant
        ones (what lets CONNECT track objects through time)."""
        a, b, far = gen.ivt_field(10), gen.ivt_field(11), gen.ivt_field(60)
        near_diff = np.abs(a - b).mean()
        far_diff = np.abs(a - far).mean()
        assert near_diff < far_diff

    def test_granule_has_subset_and_decoy_variables(self, gen):
        g = gen.granule(0)
        for var in MerraGenerator.IVT_VARIABLES:
            assert var in g
        assert "T" in g and "PS" in g
        sub = g.subset(list(MerraGenerator.IVT_VARIABLES))
        assert 0.3 < sub.nbytes / g.nbytes < 0.7

    def test_ground_truth_mask_binary_and_nonempty(self, gen):
        mask = gen.ground_truth_mask(0)
        assert mask.dtype == np.uint8
        assert set(np.unique(mask)) <= {0, 1}
        # At least one river alive at t=0 across a few steps.
        total = sum(gen.ground_truth_mask(t).sum() for t in range(6))
        assert total > 0

    def test_rivers_create_high_ivt_regions(self, gen):
        """IVT inside labelled filaments should greatly exceed background."""
        for t in range(0, 12, 3):
            mask = gen.ground_truth_mask(t).astype(bool)
            if mask.sum() < 10:
                continue
            ivt = gen.ivt_field(t)
            assert ivt[mask].mean() > 1.5 * ivt[~mask].mean()
            return
        pytest.fail("no live river found in the first 12 steps")

    def test_volumes_stack_time_axis(self, gen):
        vol = gen.ivt_volume(0, 4)
        lab = gen.label_volume(0, 4)
        assert vol.shape == (4, 45, 72)
        assert lab.shape == (4, 45, 72)


class TestIVT:
    def test_known_constant_case(self):
        """Constant q*u over a pressure column integrates analytically."""
        nlev, nlat, nlon = 5, 3, 4
        levels = np.linspace(1000.0, 200.0, nlev)  # hPa
        u = np.full((nlev, nlat, nlon), 10.0)
        v = np.zeros_like(u)
        qv = np.full_like(u, 0.005)
        ivt_u, ivt_v = integrated_vapor_transport(u, v, qv, levels)
        expected = 0.005 * 10.0 * (1000.0 - 200.0) * 100.0 / 9.80665
        np.testing.assert_allclose(ivt_u, expected, rtol=1e-6)
        np.testing.assert_allclose(ivt_v, 0.0, atol=1e-12)

    def test_magnitude_is_hypot(self):
        levels = np.array([1000.0, 500.0])
        u = np.full((2, 2, 2), 3.0)
        v = np.full((2, 2, 2), 4.0)
        qv = np.full((2, 2, 2), 0.01)
        mag = ivt_magnitude(u, v, qv, levels)
        iu, iv = integrated_vapor_transport(u, v, qv, levels)
        np.testing.assert_allclose(mag, np.hypot(iu, iv), rtol=1e-6)

    def test_level_order_does_not_matter(self):
        levels = np.array([1000.0, 700.0, 400.0])
        rng = np.random.default_rng(0)
        u = rng.normal(size=(3, 4, 5))
        v = rng.normal(size=(3, 4, 5))
        qv = rng.uniform(0, 0.01, size=(3, 4, 5))
        a = ivt_magnitude(u, v, qv, levels)
        rev = slice(None, None, -1)
        b = ivt_magnitude(u[rev], v[rev], qv[rev], levels[::-1])
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_shape_validation(self):
        levels = np.array([1000.0, 500.0])
        good = np.zeros((2, 3, 4))
        with pytest.raises(ShapeError):
            integrated_vapor_transport(good, good, np.zeros((2, 3, 5)), levels)
        with pytest.raises(ShapeError):
            integrated_vapor_transport(good, good, good, np.array([1000.0]))
        with pytest.raises(ShapeError):
            integrated_vapor_transport(
                np.zeros((2, 3)), np.zeros((2, 3)), np.zeros((2, 3)), levels
            )

    def test_realistic_magnitudes(self):
        """Synthetic IVT should fall in the meteorological range
        (background ~tens, atmospheric rivers ~hundreds kg/m/s)."""
        gen = MerraGenerator(GridSpec(nlat=45, nlon=72, nlev=8), seed=7)
        ivt = gen.ivt_field(0)
        assert 5.0 < np.median(ivt) < 500.0
        assert ivt.max() < 5000.0
