"""Tests for CONNECT labelling, metrics, and the GPU perf model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError, ShapeError
from repro.ml import GTX1080TI, connect_segmentation, object_level_metrics, voxel_metrics
from repro.ml.connect import label_volume
from repro.ml.perfmodel import (
    PAPER_INFER_VOXELS,
    PAPER_TRAIN_VOXELS,
)


class TestLabelVolume:
    def test_empty_mask(self):
        labels, n = label_volume(np.zeros((3, 4, 5), dtype=bool))
        assert n == 0
        assert labels.sum() == 0

    def test_single_voxel(self):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[1, 1, 1] = True
        labels, n = label_volume(mask)
        assert n == 1
        assert labels[1, 1, 1] == 1

    def test_two_separate_components(self):
        mask = np.zeros((3, 5, 5), dtype=bool)
        mask[0, 0, 0] = True
        mask[2, 4, 4] = True
        _, n = label_volume(mask)
        assert n == 2

    def test_temporal_connection_makes_one_object(self):
        """The same pixel lit in consecutive timesteps is ONE object —
        the core CONNECT idea of connecting pixels in time."""
        mask = np.zeros((4, 3, 3), dtype=bool)
        mask[:, 1, 1] = True
        _, n = label_volume(mask)
        assert n == 1

    def test_diagonal_is_not_connected(self):
        """6-connectivity: face neighbors only."""
        mask = np.zeros((1, 3, 3), dtype=bool)
        mask[0, 0, 0] = True
        mask[0, 1, 1] = True
        _, n = label_volume(mask)
        assert n == 2

    def test_l_shaped_object(self):
        mask = np.zeros((1, 4, 4), dtype=bool)
        mask[0, 0, :3] = True
        mask[0, 1:3, 2] = True
        _, n = label_volume(mask)
        assert n == 1

    def test_2d_input_rejected(self):
        with pytest.raises(ShapeError):
            label_volume(np.zeros((4, 4), dtype=bool))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_labels_partition_foreground(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((4, 6, 6)) > 0.7
        labels, n = label_volume(mask)
        assert (labels > 0).sum() == mask.sum()
        assert set(np.unique(labels)) <= set(range(n + 1))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_components_are_internally_connected(self, seed):
        """Every labelled component, re-labelled alone, is one component."""
        rng = np.random.default_rng(seed)
        mask = rng.random((3, 5, 5)) > 0.6
        labels, n = label_volume(mask)
        for obj_id in range(1, n + 1):
            _, sub_n = label_volume(labels == obj_id)
            assert sub_n == 1


class TestConnectSegmentation:
    def _volume_with_moving_river(self):
        """A bright streak moving one pixel per timestep + faint noise."""
        rng = np.random.default_rng(0)
        vol = rng.uniform(0, 10.0, size=(8, 12, 20)).astype(np.float32)
        for t in range(8):
            vol[t, 5:8, 3 + t : 9 + t] = 500.0
        return vol

    def test_moving_object_tracked_as_one(self):
        vol = self._volume_with_moving_river()
        report = connect_segmentation(vol, threshold=100.0)
        assert report.n_objects == 1
        obj = report.objects[0]
        assert obj.genesis_t == 0
        assert obj.termination_t == 7
        assert obj.lifetime_steps == 8

    def test_percentile_threshold_default(self):
        vol = self._volume_with_moving_river()
        report = connect_segmentation(vol, threshold_percentile=95.0)
        assert report.threshold == pytest.approx(np.percentile(vol, 95.0))
        assert report.n_objects >= 1

    def test_min_voxels_filters_noise(self):
        vol = np.zeros((3, 8, 8), dtype=np.float32)
        vol[0, 0, 0] = 100.0  # single-voxel speck
        vol[:, 4:6, 4:6] = 100.0  # real object (12 voxels)
        report = connect_segmentation(vol, threshold=50.0, min_voxels=4)
        assert report.n_objects == 1
        assert report.objects[0].voxels == 12

    def test_object_statistics(self):
        vol = np.zeros((2, 4, 4), dtype=np.float32)
        vol[0, 1, 1] = 10.0
        vol[0, 1, 2] = 20.0
        vol[0, 2, 1] = 30.0
        vol[0, 2, 2] = 40.0
        report = connect_segmentation(vol, threshold=5.0, min_voxels=1)
        obj = report.objects[0]
        assert obj.max_intensity == 40.0
        assert obj.mean_intensity == 25.0
        assert obj.centroid_txy == (0.0, 1.5, 1.5)

    def test_object_by_id(self):
        vol = self._volume_with_moving_river()
        report = connect_segmentation(vol, threshold=100.0)
        assert report.object_by_id(1).id == 1
        with pytest.raises(KeyError):
            report.object_by_id(99)

    def test_bad_shape_rejected(self):
        with pytest.raises(ShapeError):
            connect_segmentation(np.zeros((4, 4)))


class TestMetrics:
    def test_perfect_prediction(self):
        truth = np.zeros((4, 4, 4))
        truth[1:3, 1:3, 1:3] = 1
        scores = voxel_metrics(truth, truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0
        assert scores.iou == 1.0

    def test_empty_prediction(self):
        truth = np.ones((2, 2, 2))
        scores = voxel_metrics(np.zeros_like(truth), truth)
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_half_overlap(self):
        truth = np.zeros(8)
        truth[:4] = 1
        pred = np.zeros(8)
        pred[2:6] = 1
        scores = voxel_metrics(pred.reshape(2, 2, 2), truth.reshape(2, 2, 2))
        assert scores.tp == 2
        assert scores.fp == 2
        assert scores.fn == 2
        assert scores.iou == pytest.approx(2 / 6)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            voxel_metrics(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_object_level_detection(self):
        truth = np.zeros((1, 10, 10), dtype=np.int32)
        truth[0, 1:4, 1:4] = 1
        truth[0, 6:9, 6:9] = 2
        pred = np.zeros_like(truth)
        pred[0, 1:4, 1:4] = 7  # detects object 1 (different id is fine)
        out = object_level_metrics(pred, truth)
        assert out["detected"] == 1
        assert out["object_recall"] == 0.5
        assert out["object_precision"] == 1.0

    def test_object_level_greedy_matching(self):
        """One predicted object cannot claim two truth objects."""
        truth = np.zeros((1, 4, 9), dtype=np.int32)
        truth[0, 1:3, 0:4] = 1
        truth[0, 1:3, 5:9] = 2
        pred = np.zeros_like(truth)
        pred[0, 1:3, 0:4] = 1  # covers only object 1 well
        out = object_level_metrics(pred, truth, iou_threshold=0.3)
        assert out["detected"] == 1


class TestPerfModel:
    def test_calibration_reproduces_paper_training_time(self):
        """Train-prep + training must total ~306 minutes at paper scale."""
        total = GTX1080TI.train_prep_seconds(PAPER_TRAIN_VOXELS) + (
            PAPER_TRAIN_VOXELS / GTX1080TI.train_voxels_per_s
        )
        assert total / 60.0 == pytest.approx(306.0, rel=1e-6)

    def test_calibration_reproduces_paper_inference_time(self):
        """§III-C: 2.3e10 voxels over 50 GPUs in 1133 minutes."""
        per_gpu = PAPER_INFER_VOXELS / 50
        seconds = per_gpu / GTX1080TI.infer_voxels_per_s
        assert seconds / 60.0 == pytest.approx(1133.0, rel=1e-6)

    def test_worker_jitter_bounded_and_deterministic(self):
        speeds = [GTX1080TI.worker_speed(f"w{i}") for i in range(50)]
        assert all(0.95 <= s <= 1.05 for s in speeds)
        assert GTX1080TI.worker_speed("w3") == GTX1080TI.worker_speed("w3")
        assert len(set(speeds)) > 10  # actually varies

    def test_invalid_voxels_rejected(self):
        with pytest.raises(MLError):
            GTX1080TI.training_seconds(0)
        with pytest.raises(MLError):
            GTX1080TI.inference_seconds(-5)

    def test_paper_voxel_constants(self):
        assert PAPER_TRAIN_VOXELS == 576 * 361 * 240
        assert PAPER_INFER_VOXELS == pytest.approx(2.3e10, rel=0.02)
