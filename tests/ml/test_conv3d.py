"""Tests for the 3-D convolution kernel: correctness vs scipy, gradients
vs finite differences."""

import numpy as np
import pytest
from scipy.ndimage import correlate

from repro.errors import ShapeError
from repro.ml.conv3d import Conv3D, conv3d_backward, conv3d_forward


def reference_conv(x, w, b):
    """Same-padded cross-correlation via scipy, channel by channel."""
    out = np.zeros((w.shape[0],) + x.shape[1:])
    for o in range(w.shape[0]):
        for c in range(x.shape[0]):
            out[o] += correlate(
                x[c].astype(np.float64),
                w[o, c].astype(np.float64),
                mode="constant",
            )
        out[o] += b[o]
    return out


class TestForward:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 5, 6, 7)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        np.testing.assert_allclose(
            conv3d_forward(x, w, b), reference_conv(x, w, b), rtol=1e-4
        )

    def test_1x1x1_kernel_is_channel_mix(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 4, 4)).astype(np.float32)
        w = rng.normal(size=(3, 2, 1, 1, 1)).astype(np.float32)
        b = np.zeros(3, dtype=np.float32)
        got = conv3d_forward(x, w, b)
        want = np.einsum("oc,cdhw->odhw", w[:, :, 0, 0, 0], x)
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_identity_kernel(self):
        x = np.random.default_rng(2).normal(size=(1, 3, 3, 3)).astype(np.float32)
        w = np.zeros((1, 1, 3, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1, 1] = 1.0
        np.testing.assert_allclose(
            conv3d_forward(x, w, np.zeros(1, np.float32)), x, rtol=1e-6
        )

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            conv3d_forward(np.zeros((2, 3, 3)), np.zeros((1, 2, 3, 3, 3)),
                           np.zeros(1))
        with pytest.raises(ShapeError):
            conv3d_forward(
                np.zeros((2, 3, 3, 3)), np.zeros((1, 2, 2, 2, 2)), np.zeros(1)
            )  # even kernel
        with pytest.raises(ShapeError):
            conv3d_forward(
                np.zeros((3, 3, 3, 3)), np.zeros((1, 2, 3, 3, 3)), np.zeros(1)
            )  # channel mismatch


class TestBackward:
    def _numerical_grad(self, f, arr, eps=1e-3):
        grad = np.zeros_like(arr, dtype=np.float64)
        flat = arr.reshape(-1)
        gflat = grad.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = f()
            flat[i] = orig - eps
            lo = f()
            flat[i] = orig
            gflat[i] = (hi - lo) / (2 * eps)
        return grad

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 4, 3)).astype(np.float64)
        w = rng.normal(size=(2, 2, 3, 3, 3)).astype(np.float64) * 0.3
        b = rng.normal(size=2).astype(np.float64)
        target = rng.normal(size=(2, 3, 4, 3))

        def loss():
            y = conv3d_forward(x, w, b)
            return 0.5 * float(((y - target) ** 2).sum())

        y = conv3d_forward(x, w, b)
        grad_y = y - target
        gx, gw, gb = conv3d_backward(x, w, grad_y)
        np.testing.assert_allclose(
            gx, self._numerical_grad(loss, x), rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(
            gw, self._numerical_grad(loss, w), rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(
            gb, self._numerical_grad(loss, b), rtol=1e-4, atol=1e-6
        )

    def test_grad_shape_validation(self):
        x = np.zeros((2, 3, 3, 3))
        w = np.zeros((1, 2, 3, 3, 3))
        with pytest.raises(ShapeError):
            conv3d_backward(x, w, np.zeros((2, 3, 3, 3)))


class TestConv3DLayer:
    def test_training_reduces_loss(self):
        """A single conv layer must be able to fit a linear target."""
        rng = np.random.default_rng(4)
        layer = Conv3D(1, 1, kernel=3, rng=rng)
        x = rng.normal(size=(1, 6, 6, 6)).astype(np.float32)
        true_w = rng.normal(size=(1, 1, 3, 3, 3)).astype(np.float32)
        target = conv3d_forward(x, true_w, np.zeros(1, np.float32))

        losses = []
        for _ in range(60):
            y = layer.forward(x)
            diff = y - target
            losses.append(float((diff**2).mean()))
            layer.backward(2 * diff / diff.size)
            layer.sgd_step(lr=0.5)
        assert losses[-1] < 0.05 * losses[0]

    def test_backward_before_forward_rejected(self):
        layer = Conv3D(1, 1)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2, 2, 2)))

    def test_momentum_accelerates(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 5, 5, 5)).astype(np.float32)
        target = 3.0 * x

        def run(momentum):
            layer = Conv3D(1, 1, kernel=1, rng=np.random.default_rng(6))
            buf = {}
            for _ in range(30):
                y = layer.forward(x)
                diff = y - target
                layer.backward(2 * diff / diff.size)
                layer.sgd_step(lr=0.01, momentum_buf=buf, momentum=momentum)
            return float(((layer.forward(x) - target) ** 2).mean())

        assert run(0.9) < run(0.0)

    def test_n_params(self):
        layer = Conv3D(2, 4, kernel=3)
        assert layer.n_params == 4 * 2 * 27 + 4
