"""Tests for sharded inference with cross-boundary stitching."""

import numpy as np
import pytest

from repro.data.merra import GridSpec, MerraGenerator
from repro.errors import ShapeError
from repro.ml import FFNConfig, FFNModel, FFNTrainer, voxel_metrics
from repro.ml.distributed_inference import (
    ShardSegmentation,
    distributed_segment,
    stitch_labels,
)
from repro.ml.connect import label_volume


def make_shard(t0, t1, labels, index=0):
    ids = np.unique(labels)
    return ShardSegmentation(
        shard_index=index,
        t0=t0,
        t1=t1,
        labels=labels.astype(np.int32),
        n_objects=int((ids != 0).sum()),
    )


class TestStitchLabels:
    def test_object_crossing_boundary_merged(self):
        """The same pixel lit on both sides of a shard cut is ONE object."""
        a = np.zeros((2, 4, 4), dtype=np.int32)
        a[:, 1, 1] = 1
        b = np.zeros((2, 4, 4), dtype=np.int32)
        b[:, 1, 1] = 1
        stitched = stitch_labels([make_shard(0, 2, a, 0), make_shard(2, 4, b, 1)])
        assert stitched.shape == (4, 4, 4)
        ids = set(np.unique(stitched)) - {0}
        assert len(ids) == 1
        assert np.all(stitched[:, 1, 1] == list(ids)[0])

    def test_disjoint_objects_stay_distinct(self):
        a = np.zeros((2, 4, 4), dtype=np.int32)
        a[:, 0, 0] = 1
        b = np.zeros((2, 4, 4), dtype=np.int32)
        b[:, 3, 3] = 1
        stitched = stitch_labels([make_shard(0, 2, a, 0), make_shard(2, 4, b, 1)])
        ids = set(np.unique(stitched)) - {0}
        assert len(ids) == 2

    def test_chain_merge_across_three_shards(self):
        """A filament crossing two boundaries collapses to one id."""
        shards = []
        for k in range(3):
            lab = np.zeros((2, 3, 3), dtype=np.int32)
            lab[:, 1, 1] = 1
            shards.append(make_shard(2 * k, 2 * k + 2, lab, k))
        stitched = stitch_labels(shards)
        assert len(set(np.unique(stitched)) - {0}) == 1

    def test_ids_compact_and_positive(self):
        a = np.zeros((1, 3, 3), dtype=np.int32)
        a[0, 0, 0] = 1
        a[0, 2, 2] = 2
        b = np.zeros((1, 3, 3), dtype=np.int32)
        b[0, 2, 2] = 1
        stitched = stitch_labels([make_shard(0, 1, a, 0), make_shard(1, 2, b, 1)])
        ids = sorted(set(np.unique(stitched)) - {0})
        assert ids == list(range(1, len(ids) + 1))

    def test_non_contiguous_shards_rejected(self):
        a = make_shard(0, 2, np.zeros((2, 3, 3), dtype=np.int32), 0)
        b = make_shard(3, 4, np.zeros((1, 3, 3), dtype=np.int32), 1)
        with pytest.raises(ShapeError):
            stitch_labels([a, b])

    def test_spatial_mismatch_rejected(self):
        a = make_shard(0, 1, np.zeros((1, 3, 3), dtype=np.int32), 0)
        b = make_shard(1, 2, np.zeros((1, 4, 4), dtype=np.int32), 1)
        with pytest.raises(ShapeError):
            stitch_labels([a, b])

    def test_empty_input_rejected(self):
        with pytest.raises(ShapeError):
            stitch_labels([])

    def test_stitching_matches_monolithic_connect(self):
        """Stitching shard-wise CONNECT labels reproduces global CONNECT
        component counts (ground truth for the algorithm)."""
        rng = np.random.default_rng(3)
        mask = rng.random((12, 10, 10)) > 0.72
        global_labels, n_global = label_volume(mask)
        shards = []
        for k, (t0, t1) in enumerate([(0, 4), (4, 8), (8, 12)]):
            local, n_local = label_volume(mask[t0:t1])
            shards.append(make_shard(t0, t1, local, k))
        stitched = stitch_labels(shards)
        n_stitched = len(set(np.unique(stitched)) - {0})
        assert n_stitched == n_global
        np.testing.assert_array_equal(stitched > 0, global_labels > 0)


class TestDistributedSegment:
    @pytest.fixture(scope="class")
    def trained_world(self):
        grid = GridSpec(nlat=45, nlon=72, nlev=8)
        gen = MerraGenerator(grid, seed=42)
        train_vol, train_lab = gen.ivt_volume(0, 24), gen.label_volume(0, 24)
        model = FFNModel(FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=42))
        FFNTrainer(model, seed=42).train(train_vol, train_lab, steps=150)
        test_vol = gen.ivt_volume(24, 16)
        test_truth = gen.label_volume(24, 16)
        return model, test_vol, test_truth

    def test_four_worker_result_close_to_monolithic(self, trained_world):
        model, volume, truth = trained_world
        from repro.ml import segment_volume

        mono = segment_volume(model, volume, max_objects=16)
        dist, shards = distributed_segment(model, volume, n_workers=4, halo=2)
        assert dist.shape == volume.shape
        assert len(shards) == 4
        mono_scores = voxel_metrics(mono, truth)
        dist_scores = voxel_metrics(dist, truth)
        # The sharded pipeline loses little quality vs one big pass.
        assert dist_scores.recall >= 0.7 * mono_scores.recall
        assert dist_scores.f1 >= 0.6 * mono_scores.f1

    def test_shards_cover_owned_regions_exactly(self, trained_world):
        model, volume, _ = trained_world
        _, shards = distributed_segment(model, volume, n_workers=3, halo=1)
        covered = sorted((s.t0, s.t1) for s in shards)
        assert covered[0][0] == 0
        assert covered[-1][1] == volume.shape[0]
        for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
            assert a1 == b0

    def test_validation(self, trained_world):
        model, volume, _ = trained_world
        with pytest.raises(ShapeError):
            distributed_segment(model, volume[0], n_workers=2)
        with pytest.raises(ShapeError):
            distributed_segment(model, volume, n_workers=2, halo=-1)
