"""Tests for the FFN model, trainer, and flood-fill inference."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml import FFNConfig, FFNModel, FFNTrainer, flood_fill, segment_volume
from repro.ml.ffn import logit, sigmoid
from repro.ml.inference import split_shards


SMALL = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=1)


def blob_volume(shape=(12, 16, 16), centers=((6, 8, 8),), radius=3.0,
                noise=0.05, seed=0):
    """A volume with bright spherical blobs on a noisy background, plus
    the binary ground truth."""
    rng = np.random.default_rng(seed)
    zz, yy, xx = np.meshgrid(*map(np.arange, shape), indexing="ij")
    vol = rng.normal(0.0, noise, size=shape)
    truth = np.zeros(shape, dtype=np.uint8)
    for cz, cy, cx in centers:
        d2 = (zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2
        vol += 2.0 * np.exp(-d2 / (2 * radius**2))
        truth |= (d2 <= radius**2).astype(np.uint8)
    return vol.astype(np.float32), truth


class TestModelMechanics:
    def test_forward_shape(self):
        model = FFNModel(SMALL)
        img = np.zeros(SMALL.fov, np.float32)
        mask = np.full(SMALL.fov, SMALL.init_logit, np.float32)
        out = model.forward(img, mask)
        assert out.shape == SMALL.fov

    def test_forward_shape_validation(self):
        model = FFNModel(SMALL)
        with pytest.raises(ShapeError):
            model.forward(np.zeros((3, 3, 3)), np.zeros((3, 3, 3)))

    def test_deterministic_init(self):
        a, b = FFNModel(SMALL), FFNModel(SMALL)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.w, lb.w)

    def test_state_dict_roundtrip(self):
        model = FFNModel(SMALL)
        state = model.state_dict()
        other = FFNModel(SMALL)
        # Perturb, then restore.
        for layer in other.layers:
            layer.w += 1.0
        other.load_state_dict(state)
        img = np.random.default_rng(0).normal(size=SMALL.fov).astype(np.float32)
        mask = np.full(SMALL.fov, SMALL.init_logit, np.float32)
        np.testing.assert_allclose(
            model.forward(img, mask), other.forward(img, mask), rtol=1e-6
        )

    def test_state_dict_shape_mismatch_rejected(self):
        model = FFNModel(SMALL)
        state = model.state_dict()
        state["layer0.w"] = np.zeros((1, 1, 1, 1, 1), np.float32)
        with pytest.raises(ShapeError):
            model.load_state_dict(state)

    def test_bad_config_rejected(self):
        with pytest.raises(ShapeError):
            FFNConfig(fov=(4, 5, 5))
        with pytest.raises(ShapeError):
            FFNConfig(modules=0)

    def test_logit_sigmoid_inverses(self):
        for p in (0.05, 0.5, 0.95):
            assert sigmoid(np.array(logit(p)))[()] == pytest.approx(p)
        with pytest.raises(ValueError):
            logit(0.0)

    def test_logistic_loss_gradient_sign(self):
        logits = np.array([2.0, -2.0])
        labels = np.array([0.0, 1.0])
        loss, grad = FFNModel.logistic_loss(logits, labels)
        assert loss > 0
        assert grad[0] > 0  # predicted 1, truth 0 -> push logit down
        assert grad[1] < 0


class TestTraining:
    def test_training_reduces_loss(self):
        vol, truth = blob_volume()
        model = FFNModel(SMALL)
        trainer = FFNTrainer(model, seed=0)
        report = trainer.train(vol, truth, steps=60)
        assert report.improved
        assert report.final_loss < 0.5 * report.initial_loss

    def test_eval_on_heldout_improves(self):
        train_vol, train_truth = blob_volume(seed=0)
        test_vol, test_truth = blob_volume(seed=99, centers=((5, 7, 9),))
        model = FFNModel(SMALL)
        trainer = FFNTrainer(model, seed=0)
        before = trainer.evaluate(test_vol, test_truth, n_patches=30)
        trainer.train(train_vol, train_truth, steps=80)
        after = trainer.evaluate(test_vol, test_truth, n_patches=30)
        assert after < before

    def test_shape_mismatch_rejected(self):
        model = FFNModel(SMALL)
        with pytest.raises(ShapeError):
            FFNTrainer(model).train(np.zeros((8, 8, 8)), np.zeros((9, 8, 8)))

    def test_volume_smaller_than_fov_rejected(self):
        model = FFNModel(SMALL)
        with pytest.raises(ShapeError):
            FFNTrainer(model).train(np.zeros((3, 3, 3)), np.zeros((3, 3, 3)))


class TestFloodFill:
    @pytest.fixture(scope="class")
    def trained(self):
        vol, truth = blob_volume()
        model = FFNModel(SMALL)
        FFNTrainer(model, seed=0).train(vol, truth, steps=100)
        return model, vol, truth

    def test_flood_covers_object(self, trained):
        model, vol, truth = trained
        probs = flood_fill(model, vol, seed=(6, 8, 8))
        predicted = probs >= model.config.segment_threshold
        overlap = (predicted & (truth > 0)).sum() / truth.sum()
        assert overlap > 0.5

    def test_flood_stays_mostly_inside(self, trained):
        model, vol, truth = trained
        probs = flood_fill(model, vol, seed=(6, 8, 8))
        predicted = probs >= model.config.segment_threshold
        background_leak = (predicted & (truth == 0)).sum()
        assert background_leak < 4 * truth.sum()

    def test_seed_outside_volume_rejected(self, trained):
        model, vol, _ = trained
        with pytest.raises(ShapeError):
            flood_fill(model, vol, seed=(99, 0, 0))

    def test_volume_smaller_than_fov_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(ShapeError):
            flood_fill(model, np.zeros((3, 3, 3), np.float32), seed=(1, 1, 1))

    def test_segment_volume_finds_objects(self, trained):
        model, _, _ = trained
        vol, truth = blob_volume(
            shape=(12, 16, 28), centers=((6, 8, 7), (6, 8, 21)), seed=5
        )
        labels = segment_volume(model, vol, max_objects=8)
        found = len([i for i in np.unique(labels) if i != 0])
        assert found >= 1
        # Labelled voxels should mostly be true object voxels.
        overlap = ((labels > 0) & (truth > 0)).sum() / max(1, (labels > 0).sum())
        assert overlap > 0.4


class TestSharding:
    def test_even_split(self):
        shards = split_shards(100, 4)
        assert shards == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_uneven_split_differs_by_at_most_one(self):
        shards = split_shards(103, 10)
        lengths = [b - a for a, b in shards]
        assert sum(lengths) == 103
        assert max(lengths) - min(lengths) <= 1

    def test_more_workers_than_steps(self):
        shards = split_shards(3, 10)
        assert len(shards) == 3
        assert all(b - a == 1 for a, b in shards)

    def test_paper_scale_split(self):
        """§III-C: 112,249 timesteps over 50 GPUs."""
        shards = split_shards(112_249, 50)
        assert len(shards) == 50
        lengths = [b - a for a, b in shards]
        assert sum(lengths) == 112_249
        assert max(lengths) - min(lengths) <= 1

    def test_validation(self):
        with pytest.raises(ShapeError):
            split_shards(0, 5)
        with pytest.raises(ShapeError):
            split_shards(5, 0)
