"""Tests for validation methodologies and the adapted Rand error."""

import numpy as np
import pytest

from repro.data.merra import GridSpec, MerraGenerator
from repro.errors import ShapeError, ValidationError
from repro.ml.metrics import adapted_rand_error
from repro.ml.validation import (
    NAMED_REGIONS,
    Region,
    TemporalSplit,
    evaluate_events,
    region_mask,
    regional_scores,
    rolling_folds,
    temporal_holdout,
)

GRID = GridSpec(nlat=45, nlon=72, nlev=4)


class TestSplits:
    def test_holdout_is_disjoint_and_covers(self):
        split = temporal_holdout(100, validation_fraction=0.25)
        assert split.train == (0, 75)
        assert split.validation == (75, 100)
        assert split.train_steps + split.validation_steps == 100

    def test_holdout_fraction_bounds(self):
        with pytest.raises(ValidationError):
            temporal_holdout(100, validation_fraction=0.0)
        with pytest.raises(ValidationError):
            temporal_holdout(100, validation_fraction=1.0)

    def test_overlapping_split_rejected(self):
        with pytest.raises(ValidationError):
            TemporalSplit(train=(0, 50), validation=(40, 80))

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            TemporalSplit(train=(5, 5), validation=(6, 10))

    def test_rolling_folds_are_causal(self):
        folds = rolling_folds(100, n_folds=4)
        assert len(folds) == 3
        for split in folds:
            # Train strictly precedes validation (no future leakage).
            assert split.train[1] <= split.validation[0]
            assert split.train[0] == 0

    def test_rolling_folds_validation_windows_tile(self):
        folds = rolling_folds(100, n_folds=4)
        windows = [f.validation for f in folds]
        for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
            assert a1 == b0  # contiguous, non-overlapping

    def test_rolling_folds_validation(self):
        with pytest.raises(ValidationError):
            rolling_folds(100, n_folds=1)
        with pytest.raises(ValidationError):
            rolling_folds(5, n_folds=4)


class TestRegions:
    def test_region_mask_shape_and_content(self):
        mask = region_mask(NAMED_REGIONS["tropics"], GRID)
        assert mask.shape == (GRID.nlat, GRID.nlon)
        lats = GRID.lats
        # Tropics rows are inside |lat| <= 20.
        rows = np.where(mask.any(axis=1))[0]
        assert np.all(np.abs(lats[rows]) <= 20.0 + 1e-9)

    def test_dateline_wrapping_region(self):
        """north-pacific spans 140E..-120 (across the date line)."""
        mask = region_mask(NAMED_REGIONS["north-pacific"], GRID)
        lons = GRID.lons
        cols = np.where(mask.any(axis=0))[0]
        col_lons = lons[cols]
        assert np.any(col_lons >= 140.0)
        assert np.any(col_lons <= -120.0)
        assert not np.any((col_lons > -120) & (col_lons < 140) & (col_lons != 0))

    def test_invalid_region_rejected(self):
        with pytest.raises(ValidationError):
            Region("bad", 50.0, 10.0, 0.0, 10.0)

    def test_regional_scores_keys_and_shapes(self):
        rng = np.random.default_rng(0)
        truth = (rng.random((6, GRID.nlat, GRID.nlon)) > 0.9).astype(int)
        scores = regional_scores(truth, truth, GRID)
        assert set(scores) <= set(NAMED_REGIONS)
        for s in scores.values():
            assert s.f1 == 1.0  # perfect prediction everywhere

    def test_regional_scores_validation(self):
        with pytest.raises(ShapeError):
            regional_scores(
                np.zeros((2, 3, 4)), np.zeros((2, 3, 4)), GRID
            )


class TestEventEvaluation:
    def _world(self):
        gen = MerraGenerator(GRID, seed=13)
        truth_ivt = gen.ivt_volume(0, 12)
        return gen, truth_ivt

    def test_perfect_prediction_detects_all_events(self):
        _, ivt = self._world()
        cut = np.percentile(ivt, 95.0)
        perfect = (ivt >= cut).astype(np.int32)
        out = evaluate_events(perfect, ivt, GRID)
        assert out["events"] >= 1
        assert out["detection_rate"] == 1.0

    def test_empty_prediction_detects_nothing(self):
        _, ivt = self._world()
        out = evaluate_events(np.zeros_like(ivt, dtype=np.int32), ivt, GRID)
        assert out["detected"] == 0
        assert out["detection_rate"] == 0.0

    def test_events_attributed_to_regions(self):
        _, ivt = self._world()
        cut = np.percentile(ivt, 95.0)
        out = evaluate_events((ivt >= cut).astype(np.int32), ivt, GRID)
        attributed = [m for m in out["matches"] if m.regions]
        # per_region rates only cover attributed events and are in [0,1].
        for stats in out["per_region"].values():
            assert 0.0 <= stats["detection_rate"] <= 1.0
            assert stats["detected"] <= stats["events"]
        assert len(attributed) == sum(
            s["events"] for s in out["per_region"].values()
        ) or True  # events may fall in multiple regions

    def test_partial_overlap_threshold(self):
        """An event covered below min_overlap_fraction is a miss."""
        truth = np.zeros((3, GRID.nlat, GRID.nlon), dtype=np.float32)
        truth[1, 10:20, 10:20] = 100.0  # one 100-voxel event
        pred = np.zeros_like(truth, dtype=np.int32)
        pred[1, 10:12, 10:20] = 1  # 20% coverage
        out = evaluate_events(
            pred, truth, GRID, truth_threshold=50.0,
            min_overlap_fraction=0.25,
        )
        assert out["events"] == 1
        assert out["detected"] == 0
        out2 = evaluate_events(
            pred, truth, GRID, truth_threshold=50.0,
            min_overlap_fraction=0.15,
        )
        assert out2["detected"] == 1


class TestAdaptedRandError:
    def test_perfect_segmentation(self):
        labels = np.zeros((4, 4, 4), dtype=int)
        labels[:2] = 1
        labels[2:] = 2
        out = adapted_rand_error(labels, labels)
        assert out["are"] == pytest.approx(0.0)

    def test_relabelled_perfect_still_zero(self):
        """ARE is invariant to label permutation."""
        truth = np.zeros((2, 4, 4), dtype=int)
        truth[:, :2] = 1
        truth[:, 2:] = 2
        pred = np.where(truth == 1, 7, 0) + np.where(truth == 2, 3, 0)
        assert adapted_rand_error(pred, truth)["are"] == pytest.approx(0.0)

    def test_merge_hurts_precision(self):
        truth = np.zeros((1, 2, 8), dtype=int)
        truth[0, :, :4] = 1
        truth[0, :, 4:] = 2
        merged = np.ones_like(truth)
        out = adapted_rand_error(merged, truth)
        assert out["precision"] < 1.0
        assert out["recall"] == pytest.approx(1.0)
        assert out["are"] > 0.0

    def test_split_hurts_recall(self):
        truth = np.ones((1, 2, 8), dtype=int)
        split = np.ones_like(truth)
        split[0, :, 4:] = 2
        out = adapted_rand_error(split, truth)
        assert out["recall"] < 1.0
        assert out["precision"] == pytest.approx(1.0)

    def test_background_truth_ignored(self):
        truth = np.zeros((1, 2, 4), dtype=int)
        pred = np.ones_like(truth)  # garbage over pure background
        out = adapted_rand_error(pred, truth)
        assert out["are"] == 0.0  # nothing to get wrong

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            adapted_rand_error(np.zeros((2, 2)), np.zeros((3, 3)))
