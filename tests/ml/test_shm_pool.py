"""Lifecycle tests for the persistent shared-memory worker pool.

The pool's contract has three legs:

1. **Bit-identity** — ``distributed_segment`` through the pool matches
   the in-process path exactly, for any worker count and engine.
2. **Resilience** — a worker crashing mid-shard retires the worker,
   retries the shard on a live one, and still returns identical output.
3. **Hygiene** — shutdown leaves no orphaned shared-memory segments and
   the parent's ``resource_tracker`` bookkeeping is balanced (every
   ``register`` matched by an ``unregister``).
"""

import glob

import numpy as np
import pytest

from repro.data.merra import GridSpec, MerraGenerator
from repro.errors import PoolError
from repro.ml import FFNConfig, FFNModel, FFNTrainer
from repro.ml.distributed_inference import distributed_segment
from repro.ml.shm_pool import SharedMemoryPool, ShardSpec


@pytest.fixture(scope="module")
def trained_world():
    grid = GridSpec(nlat=30, nlon=48, nlev=8)
    gen = MerraGenerator(grid, seed=7)
    train_vol, train_lab = gen.ivt_volume(0, 16), gen.label_volume(0, 16)
    model = FFNModel(FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=7))
    FFNTrainer(model, seed=7).train(train_vol, train_lab, steps=80)
    return model, gen.ivt_volume(16, 12)


def _pool_shm_leftovers() -> list[str]:
    return glob.glob("/dev/shm/*repro-pool*")


class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["batched", "serial"])
    def test_bit_identical_to_in_process(self, trained_world, workers, engine):
        model, volume = trained_world
        ref, _ = distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=1, engine=engine
        )
        out, shards = distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=workers,
            engine=engine,
        )
        assert np.array_equal(out, ref)
        assert out.dtype == ref.dtype
        assert len(shards) == 4

    def test_persistent_pool_reused_across_volumes(self, trained_world):
        model, volume = trained_world
        other = volume[:, ::-1, :].copy()
        with SharedMemoryPool(model, n_workers=2) as pool:
            for vol in (volume, other):
                ref, _ = distributed_segment(
                    model, vol, n_workers=4, halo=2, max_workers=1
                )
                out, _ = distributed_segment(
                    model, vol, n_workers=4, halo=2, max_workers=2, pool=pool
                )
                assert np.array_equal(out, ref)
            assert pool.live_workers() == [0, 1]

    def test_seed_batch_through_pool(self, trained_world):
        model, volume = trained_world
        ref, _ = distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=1, seed_batch=3
        )
        out, _ = distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=2, seed_batch=3
        )
        assert np.array_equal(out, ref)

    def test_spawn_start_method(self, trained_world):
        model, volume = trained_world
        ref, _ = distributed_segment(
            model, volume, n_workers=2, halo=2, max_workers=1
        )
        with SharedMemoryPool(model, n_workers=2,
                              start_method="spawn") as pool:
            out, _ = distributed_segment(
                model, volume, n_workers=2, halo=2, max_workers=2, pool=pool
            )
        assert np.array_equal(out, ref)


class TestCrashRecovery:
    def test_crash_mid_shard_retried_on_live_worker(self, trained_world):
        model, volume = trained_world
        ref, _ = distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=1
        )
        with SharedMemoryPool(model, n_workers=2) as pool:
            pool.inject_crash(0)
            out, _ = distributed_segment(
                model, volume, n_workers=4, halo=2, max_workers=2, pool=pool
            )
            assert np.array_equal(out, ref)
            assert pool.dead_workers == [0]
            assert pool.live_workers() == [1]
            assert len(pool.retried) >= 1
            assert all(r.retried for r in pool.retried)

    def test_all_workers_dead_raises_pool_error(self, trained_world):
        model, volume = trained_world
        specs = [ShardSpec(0, 0, volume.shape[0], 0, volume.shape[0])]
        with SharedMemoryPool(model, n_workers=1) as pool:
            pool.inject_crash(0)
            with pytest.raises(PoolError):
                pool.segment_shards(volume, specs)


class TestHygiene:
    def test_no_orphaned_segments_after_close(self, trained_world):
        model, volume = trained_world
        pool = SharedMemoryPool(model, n_workers=2)
        distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=2, pool=pool
        )
        pool.close()
        assert pool.closed
        assert _pool_shm_leftovers() == []

    def test_resource_tracker_registrations_balanced(
        self, trained_world, monkeypatch
    ):
        """Every parent-side shared_memory register is unregistered by
        the time the call returns — the resource_tracker ends the run
        with nothing left to clean up (or warn about)."""
        from multiprocessing import resource_tracker

        events: list[tuple[str, str]] = []
        real_register = resource_tracker.register
        real_unregister = resource_tracker.unregister

        def spy_register(name, rtype):
            if rtype == "shared_memory":
                events.append(("register", name))
            return real_register(name, rtype)

        def spy_unregister(name, rtype):
            if rtype == "shared_memory":
                events.append(("unregister", name))
            return real_unregister(name, rtype)

        monkeypatch.setattr(resource_tracker, "register", spy_register)
        monkeypatch.setattr(resource_tracker, "unregister", spy_unregister)

        model, volume = trained_world
        with SharedMemoryPool(model, n_workers=2) as pool:
            distributed_segment(
                model, volume, n_workers=4, halo=2, max_workers=2, pool=pool
            )

        registered = {n for kind, n in events if kind == "register"}
        unregistered = {n for kind, n in events if kind == "unregister"}
        assert registered, "expected the pool to share segments"
        assert registered == unregistered

    def test_close_is_idempotent(self, trained_world):
        model, _ = trained_world
        pool = SharedMemoryPool(model, n_workers=1)
        pool.close()
        pool.close()
        assert pool.closed

    def test_ephemeral_pool_cleaned_up(self, trained_world):
        """distributed_segment's own pool (no pool= argument) is closed
        even though the caller never sees it."""
        model, volume = trained_world
        distributed_segment(
            model, volume, n_workers=4, halo=2, max_workers=2
        )
        assert _pool_shm_leftovers() == []
