"""Parity suite: every batched path must reproduce its serial reference.

- batched conv3d forward/backward vs unbatched, within tight tolerance
  (forward is exact: the unbatched API *is* the N=1 batched kernel);
- wavefront flood_fill vs the serial per-patch reference, bit for bit;
- distributed_segment across worker counts (process pool vs in-process)
  and vs the monolithic segment_volume on a single shard;
- the sigmoid dtype fix (float32 stays float32).
"""

import numpy as np
import pytest

from repro.errors import MLError, ShapeError
from repro.ml import (
    FFNConfig,
    FFNModel,
    FFNTrainer,
    conv3d_backward,
    conv3d_backward_batch,
    conv3d_forward,
    conv3d_forward_batch,
    distributed_segment,
    flood_fill,
    segment_volume,
)
from repro.ml.ffn import sigmoid


SMALL = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=1)


def blob_volume(shape=(12, 16, 16), centers=((6, 8, 8),), radius=3.0,
                noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    zz, yy, xx = np.meshgrid(*map(np.arange, shape), indexing="ij")
    vol = rng.normal(0.0, noise, size=shape)
    truth = np.zeros(shape, dtype=np.uint8)
    for cz, cy, cx in centers:
        d2 = (zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2
        vol += 2.0 * np.exp(-d2 / (2 * radius**2))
        truth |= (d2 <= radius**2).astype(np.uint8)
    return vol.astype(np.float32), truth


@pytest.fixture(scope="module")
def trained():
    vol, truth = blob_volume()
    model = FFNModel(SMALL)
    FFNTrainer(model, seed=0).train(vol, truth, steps=100)
    return model


class TestConv3DBatchParity:
    def test_forward_batch_equals_unbatched_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 3, 5, 6, 7)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        batched = conv3d_forward_batch(x, w, b)
        for i in range(x.shape[0]):
            np.testing.assert_array_equal(batched[i],
                                          conv3d_forward(x[i], w, b))

    def test_backward_batch_matches_summed_unbatched(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 2, 4, 4, 4)).astype(np.float64)
        w = rng.normal(size=(3, 2, 3, 3, 3)).astype(np.float64) * 0.3
        grad_y = rng.normal(size=(5, 3, 4, 4, 4)).astype(np.float64)
        gx_b, gw_b, gb_b = conv3d_backward_batch(x, w, grad_y)
        gw_sum = np.zeros_like(gw_b)
        gb_sum = np.zeros_like(gb_b)
        for i in range(x.shape[0]):
            gx_i, gw_i, gb_i = conv3d_backward(x[i], w, grad_y[i])
            np.testing.assert_allclose(gx_b[i], gx_i, rtol=1e-12)
            gw_sum += gw_i
            gb_sum += gb_i
        np.testing.assert_allclose(gw_b, gw_sum, rtol=1e-10)
        np.testing.assert_allclose(gb_b, gb_sum, rtol=1e-10)

    def test_batch_shape_validation(self):
        with pytest.raises(ShapeError):
            conv3d_forward_batch(np.zeros((2, 3, 3, 3)),
                                 np.zeros((1, 2, 3, 3, 3)), np.zeros(1))
        with pytest.raises(ShapeError):
            conv3d_backward_batch(
                np.zeros((2, 2, 3, 3, 3)), np.zeros((1, 2, 3, 3, 3)),
                np.zeros((2, 2, 3, 3, 3)),
            )


class TestFFNModelBatchParity:
    def test_forward_batch_rows_equal_single_forwards(self, trained):
        rng = np.random.default_rng(2)
        n = 5
        images = rng.normal(size=(n, *SMALL.fov)).astype(np.float32)
        masks = rng.normal(size=(n, *SMALL.fov)).astype(np.float32)
        batched = trained.forward_batch(images, masks)
        for i in range(n):
            np.testing.assert_array_equal(
                batched[i], trained.forward(images[i], masks[i])
            )

    def test_backward_batch_matches_sequential_grads(self, trained):
        rng = np.random.default_rng(3)
        n = 4
        images = rng.normal(size=(n, *SMALL.fov)).astype(np.float32)
        masks = rng.normal(size=(n, *SMALL.fov)).astype(np.float32)
        grads = rng.normal(size=(n, *SMALL.fov)).astype(np.float32)

        logits = trained.forward_batch(images, masks)
        assert logits.shape == (n, *SMALL.fov)
        trained.backward_batch(grads)
        batched_gw = [layer.grad_w.copy() for layer in trained.layers]
        for layer in trained.layers:
            layer.grad_w[:] = 0
            layer.grad_b[:] = 0

        for i in range(n):
            trained.forward(images[i], masks[i])
            trained.backward(grads[i])
        # Batched grads sum over the batch inside one tensordot; the
        # sequential reference accumulates in Python — same math, float32
        # addition order differs, so allow accumulation-order slack.
        for gw_b, layer in zip(batched_gw, trained.layers):
            np.testing.assert_allclose(gw_b, layer.grad_w,
                                       rtol=1e-3, atol=1e-5)
            layer.grad_w[:] = 0
            layer.grad_b[:] = 0

    def test_mixed_forward_backward_rejected(self, trained):
        img = np.zeros(SMALL.fov, np.float32)
        mask = np.zeros(SMALL.fov, np.float32)
        trained.forward(img, mask)
        with pytest.raises(ShapeError):
            trained.backward_batch(np.zeros((1, *SMALL.fov), np.float32))
        trained.forward_batch(img[None], mask[None])
        with pytest.raises(ShapeError):
            trained.backward(np.zeros(SMALL.fov, np.float32))

    def test_forward_batch_shape_validation(self, trained):
        with pytest.raises(ShapeError):
            trained.forward_batch(
                np.zeros(SMALL.fov, np.float32),
                np.zeros(SMALL.fov, np.float32),
            )


class TestFloodFillEngineParity:
    def test_wavefront_bitwise_equals_serial(self, trained):
        vol, _ = blob_volume()
        batched = flood_fill(trained, vol, (6, 8, 8), engine="batched")
        serial = flood_fill(trained, vol, (6, 8, 8), engine="serial")
        np.testing.assert_array_equal(batched, serial)

    def test_parity_on_multiple_seeded_volumes(self, trained):
        for vol_seed in (3, 11, 29):
            vol, _ = blob_volume(
                shape=(14, 18, 18), centers=((7, 9, 9), (7, 4, 13)),
                seed=vol_seed,
            )
            for seed_voxel in ((7, 9, 9), (2, 2, 2)):
                batched = flood_fill(trained, vol, seed_voxel,
                                     engine="batched")
                serial = flood_fill(trained, vol, seed_voxel,
                                    engine="serial")
                np.testing.assert_array_equal(batched, serial)

    def test_segment_volume_engine_parity(self, trained):
        vol, _ = blob_volume(
            shape=(12, 16, 28), centers=((6, 8, 7), (6, 8, 21)), seed=5
        )
        np.testing.assert_array_equal(
            segment_volume(trained, vol, max_objects=8, engine="batched"),
            segment_volume(trained, vol, max_objects=8, engine="serial"),
        )

    def test_window_cache_reused_and_harmless(self, trained):
        vol, _ = blob_volume()
        cache: dict = {}
        first = flood_fill(trained, vol, (6, 8, 8), window_cache=cache)
        assert cache  # the flood populated it
        n_windows = len(cache)
        again = flood_fill(trained, vol, (6, 8, 8), window_cache=cache)
        assert len(cache) == n_windows
        np.testing.assert_array_equal(first, again)

    def test_max_steps_budget_respected(self, trained):
        vol, _ = blob_volume()
        limited = flood_fill(trained, vol, (6, 8, 8), max_steps=3)
        full = flood_fill(trained, vol, (6, 8, 8))
        # A truncated flood touches no more voxels than the full one.
        thr = trained.config.segment_threshold
        assert (limited >= thr).sum() <= (full >= thr).sum()

    def test_unknown_engine_rejected(self, trained):
        vol, _ = blob_volume()
        with pytest.raises(MLError):
            flood_fill(trained, vol, (6, 8, 8), engine="gpu")


class TestMultiSeedWavefrontParity:
    def test_flood_fill_multi_rows_equal_individual_floods(self, trained):
        from repro.ml.inference import flood_fill_multi

        vol, _ = blob_volume(
            shape=(14, 18, 18), centers=((7, 9, 9), (7, 4, 13)), seed=3
        )
        seeds = [(7, 9, 9), (7, 4, 13), (2, 2, 2)]
        multi = flood_fill_multi(trained, vol, seeds)
        for seed_voxel, merged in zip(seeds, multi):
            alone = flood_fill(trained, vol, seed_voxel)
            np.testing.assert_array_equal(merged, alone)

    @pytest.mark.parametrize("seed_batch", [2, 4, 9])
    def test_segment_volume_seed_batch_bit_identical(self, trained,
                                                     seed_batch):
        vol, _ = blob_volume(
            shape=(12, 16, 28), centers=((6, 8, 7), (6, 8, 21)), seed=5
        )
        reference = segment_volume(trained, vol, max_objects=8)
        np.testing.assert_array_equal(
            segment_volume(trained, vol, max_objects=8,
                           seed_batch=seed_batch),
            reference,
        )

    def test_seed_batch_parity_on_serial_engine(self, trained):
        vol, _ = blob_volume(
            shape=(12, 16, 28), centers=((6, 8, 7), (6, 8, 21)), seed=7
        )
        np.testing.assert_array_equal(
            segment_volume(trained, vol, max_objects=8, engine="serial",
                           seed_batch=3),
            segment_volume(trained, vol, max_objects=8, engine="serial"),
        )

    def test_seed_batch_validation(self, trained):
        vol, _ = blob_volume()
        with pytest.raises(MLError):
            segment_volume(trained, vol, seed_batch=0)


class TestDistributedWorkerParity:
    @pytest.fixture(scope="class")
    def world(self, trained):
        vol, _ = blob_volume(
            shape=(16, 20, 20), centers=((5, 10, 10), (11, 6, 14)), seed=9
        )
        return trained, vol

    def test_pool_equals_in_process(self, world):
        model, vol = world
        serial_labels, serial_shards = distributed_segment(
            model, vol, n_workers=4, halo=2, max_workers=1
        )
        pool_labels, pool_shards = distributed_segment(
            model, vol, n_workers=4, halo=2, max_workers=4
        )
        np.testing.assert_array_equal(serial_labels, pool_labels)
        assert [s.n_objects for s in serial_shards] == \
               [s.n_objects for s in pool_shards]

    def test_single_shard_equals_monolithic(self, world):
        model, vol = world
        dist, shards = distributed_segment(
            model, vol, n_workers=1, max_objects_per_shard=16
        )
        mono = segment_volume(model, vol, max_objects=16)
        assert len(shards) == 1
        # One shard = the whole volume: identical up to label compaction,
        # which is the identity here because mono ids are already 1..n.
        np.testing.assert_array_equal(dist, mono)

    def test_max_workers_validation(self, world):
        model, vol = world
        with pytest.raises(ShapeError):
            distributed_segment(model, vol, n_workers=2, max_workers=0)


class TestSigmoidDtype:
    def test_float32_preserved(self):
        x = np.linspace(-10, 10, 7, dtype=np.float32)
        assert sigmoid(x).dtype == np.float32

    def test_float64_preserved(self):
        x = np.linspace(-10, 10, 7, dtype=np.float64)
        assert sigmoid(x).dtype == np.float64

    def test_integer_upcast_to_float64(self):
        assert sigmoid(np.array([-2, 0, 2])).dtype == np.float64

    def test_values_still_stable(self):
        x = np.array([-800.0, -30.0, 0.0, 30.0, 800.0], dtype=np.float32)
        y = sigmoid(x)
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y[2], 0.5)
        assert y[0] == 0.0 or y[0] < 1e-12
        assert y[-1] == 1.0 or y[-1] > 1 - 1e-6
