"""Tests for the macro-benchmark harness and its CLI entry point."""

import json

import numpy as np
import pytest

from repro.bench import (
    BenchRecord,
    benchmark_world,
    render_summary,
    run_benchmarks,
    write_artifact,
)
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_records():
    return run_benchmarks(smoke=True, repeat=1, max_workers=2, seed=42)


class TestBenchRecords:
    def test_all_benchmarks_present(self, smoke_records):
        names = [r.name for r in smoke_records]
        assert names == [
            "conv3d_batched",
            "flood_fill_wavefront",
            "segment_volume_wavefront",
            "distributed_fanout",
            "control_plane_loadtest",
        ]

    def test_outputs_identical_across_paths(self, smoke_records):
        for record in smoke_records:
            assert record.outputs_identical, record.name

    def test_speedup_is_ratio(self):
        r = BenchRecord(
            name="x", baseline="a", optimized="b",
            baseline_seconds=2.0, optimized_seconds=0.5,
            checksum_baseline="c", checksum_optimized="c",
        )
        assert r.speedup == 4.0

    def test_world_is_deterministic(self):
        a = benchmark_world(smoke=True, seed=7)
        b = benchmark_world(smoke=True, seed=7)
        np.testing.assert_array_equal(a["macro_volume"], b["macro_volume"])
        for (ka, wa), (kb, wb) in zip(
            sorted(a["model"].state_dict().items()),
            sorted(b["model"].state_dict().items()),
        ):
            assert ka == kb
            np.testing.assert_array_equal(wa, wb)


class TestArtifact:
    def test_artifact_written_and_well_formed(self, smoke_records, tmp_path):
        path = write_artifact(smoke_records, out_dir=tmp_path, smoke=True,
                              date="2026-01-01")
        assert path.name == "BENCH_2026-01-01_smoke.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench/v1"
        assert payload["smoke"] is True
        assert len(payload["results"]) == len(smoke_records)
        for entry in payload["results"]:
            assert entry["outputs_identical"] is True
            assert entry["speedup"] > 0

    def test_summary_mentions_every_benchmark(self, smoke_records):
        text = render_summary(smoke_records)
        for record in smoke_records:
            assert record.name in text
        assert "DIFFER" not in text


class TestBenchCLI:
    def test_smoke_run_writes_artifact(self, tmp_path, capsys):
        code = main([
            "bench", "--smoke", "--repeat", "1", "--max-workers", "2",
            "--out", str(tmp_path),
        ])
        assert code == 0
        artifacts = list(tmp_path.glob("BENCH_*_smoke.json"))
        assert len(artifacts) == 1
        out = capsys.readouterr().out
        assert "segment_volume_wavefront" in out
        assert "wrote" in out

    def test_bench_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.repeat == 2
        assert args.out == "."
