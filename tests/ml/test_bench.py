"""Tests for the macro-benchmark harness and its CLI entry point."""

import json
import os

import numpy as np
import pytest

from repro.bench import (
    BenchRecord,
    benchmark_world,
    compare_artifacts,
    render_comparison,
    render_summary,
    run_benchmarks,
    write_artifact,
)
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_records():
    return run_benchmarks(smoke=True, repeat=1, max_workers=2, seed=42)


class TestBenchRecords:
    def test_all_benchmarks_present(self, smoke_records):
        names = [r.name for r in smoke_records]
        assert names == [
            "conv3d_batched",
            "flood_fill_wavefront",
            "segment_volume_wavefront",
            "multiseed_wavefront",
            "distributed_fanout",
            "pipelined_driver",
            "control_plane_loadtest",
        ]

    def test_outputs_identical_across_paths(self, smoke_records):
        for record in smoke_records:
            assert record.outputs_identical, record.name

    def test_speedup_is_ratio(self):
        r = BenchRecord(
            name="x", baseline="a", optimized="b",
            baseline_seconds=2.0, optimized_seconds=0.5,
            checksum_baseline="c", checksum_optimized="c",
        )
        assert r.speedup == 4.0

    def test_world_is_deterministic(self):
        a = benchmark_world(smoke=True, seed=7)
        b = benchmark_world(smoke=True, seed=7)
        np.testing.assert_array_equal(a["macro_volume"], b["macro_volume"])
        for (ka, wa), (kb, wb) in zip(
            sorted(a["model"].state_dict().items()),
            sorted(b["model"].state_dict().items()),
        ):
            assert ka == kb
            np.testing.assert_array_equal(wa, wb)


class TestArtifact:
    def test_artifact_written_and_well_formed(self, smoke_records, tmp_path):
        path = write_artifact(smoke_records, out_dir=tmp_path, smoke=True,
                              date="2026-01-01")
        assert path.name == "BENCH_2026-01-01_smoke.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench/v1"
        assert payload["smoke"] is True
        assert len(payload["results"]) == len(smoke_records)
        for entry in payload["results"]:
            assert entry["outputs_identical"] is True
            assert entry["speedup"] > 0

    def test_summary_mentions_every_benchmark(self, smoke_records):
        text = render_summary(smoke_records)
        for record in smoke_records:
            assert record.name in text
        assert "DIFFER" not in text


class TestBenchCLI:
    def test_smoke_run_writes_artifact(self, tmp_path, capsys):
        code = main([
            "bench", "--smoke", "--repeat", "1", "--max-workers", "2",
            "--out", str(tmp_path),
        ])
        assert code == 0
        artifacts = list(tmp_path.glob("BENCH_*_smoke.json"))
        assert len(artifacts) == 1
        out = capsys.readouterr().out
        assert "segment_volume_wavefront" in out
        assert "wrote" in out

    def test_bench_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.repeat == 2
        assert args.out == "."
        assert args.compare is None


class TestFanoutDegradedMarking:
    def test_effective_parallelism_and_degraded_recorded(self, smoke_records):
        record = next(r for r in smoke_records if r.name == "distributed_fanout")
        meta = record.meta
        cpu_count = os.cpu_count() or 1
        assert meta["cpu_count"] == cpu_count
        assert meta["effective_parallelism"] == min(
            meta["max_workers"], cpu_count, meta["n_shards"]
        )
        assert meta["degraded"] is (cpu_count < meta["max_workers"])
        assert meta["pool"] == "shm-persistent"


class TestPipelinedRecord:
    def test_simulated_makespan_shrinks_with_overlap_visible(
        self, smoke_records
    ):
        record = next(r for r in smoke_records if r.name == "pipelined_driver")
        assert record.outputs_identical  # overlap must not change artifacts
        meta = record.meta
        assert meta["time_domain"] == "simulated"
        barrier, overlap = meta["barrier"], meta["overlap"]
        assert overlap["makespan_s"] < barrier["makespan_s"]
        # The win is *visible* in the exact time partition: compute and
        # transfer run simultaneously where the barrier kept them apart.
        assert (
            overlap["compute_transfer_overlap_s"]
            > barrier["compute_transfer_overlap_s"]
        )
        for side in (barrier, overlap):
            assert sum(side["layers"].values()) == pytest.approx(
                side["makespan_s"], abs=0.05
            )


def _payload(*results):
    return {"schema": "repro-bench/v1", "results": list(results)}


def _result(name, speedup, *, degraded=False, identical=True,
            baseline_s=1.0, simulated=False):
    meta = {}
    if degraded:
        meta["degraded"] = True
    if simulated:
        meta["time_domain"] = "simulated"
    return {
        "name": name,
        "speedup": speedup,
        "baseline_seconds": baseline_s,
        "optimized_seconds": baseline_s / speedup,
        "outputs_identical": identical,
        "meta": meta,
    }


class TestCompareArtifacts:
    def test_regression_detected_beyond_threshold(self):
        old = _payload(_result("a", 2.0))
        new = _payload(_result("a", 1.7))  # -15%
        comparison = compare_artifacts(old, new)
        assert [e["name"] for e in comparison["regressions"]] == ["a"]

    def test_small_drift_is_ok(self):
        comparison = compare_artifacts(
            _payload(_result("a", 2.0)), _payload(_result("a", 1.85))
        )
        assert comparison["regressions"] == []
        assert [e["name"] for e in comparison["ok"]] == ["a"]

    def test_improvement_classified(self):
        comparison = compare_artifacts(
            _payload(_result("a", 2.0)), _payload(_result("a", 2.5))
        )
        assert [e["name"] for e in comparison["improved"]] == ["a"]

    def test_degraded_records_skipped_not_gated(self):
        old = _payload(_result("fanout", 2.0))
        new = _payload(_result("fanout", 0.4, degraded=True))
        comparison = compare_artifacts(old, new)
        assert comparison["regressions"] == []
        assert comparison["skipped"][0]["name"] == "fanout"
        assert "degraded" in comparison["skipped"][0]["reason"]

    def test_non_identical_outputs_skipped(self):
        comparison = compare_artifacts(
            _payload(_result("a", 2.0)),
            _payload(_result("a", 1.0, identical=False)),
        )
        assert comparison["regressions"] == []
        assert "identical" in comparison["skipped"][0]["reason"]

    def test_sub_noise_timings_skipped(self):
        comparison = compare_artifacts(
            _payload(_result("a", 2.0, baseline_s=0.003)),
            _payload(_result("a", 1.0, baseline_s=0.003)),
        )
        assert comparison["regressions"] == []
        assert "noise" in comparison["skipped"][0]["reason"]

    def test_simulated_records_exempt_from_noise_floor(self):
        comparison = compare_artifacts(
            _payload(_result("p", 1.10, baseline_s=0.003, simulated=True)),
            _payload(_result("p", 0.90, baseline_s=0.003, simulated=True)),
        )
        assert [e["name"] for e in comparison["regressions"]] == ["p"]

    def test_added_and_retired_benchmarks_skipped(self):
        comparison = compare_artifacts(
            _payload(_result("old_only", 2.0)),
            _payload(_result("new_only", 2.0)),
        )
        assert comparison["regressions"] == []
        reasons = {e["name"]: e["reason"] for e in comparison["skipped"]}
        assert "old artifact" in reasons["old_only"]
        assert "new artifact" in reasons["new_only"]

    def test_render_mentions_every_record(self):
        comparison = compare_artifacts(
            _payload(_result("a", 2.0), _result("b", 1.0)),
            _payload(_result("a", 1.0), _result("b", 1.0)),
        )
        text = render_comparison(comparison, old_label="OLD.json")
        assert "OLD.json" in text
        assert "REGRESSED" in text and "a" in text and "b" in text


class TestCompareCLI:
    """--compare wiring, with the (slow) bench run stubbed out."""

    @pytest.fixture
    def stubbed_bench(self, smoke_records, monkeypatch):
        import repro.bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "run_benchmarks",
            lambda **kwargs: list(smoke_records),
        )
        return smoke_records

    def test_compare_against_self_passes(self, stubbed_bench, tmp_path):
        old = write_artifact(stubbed_bench, out_dir=tmp_path / "old",
                             smoke=True, date="2026-01-01")
        code = main([
            "bench", "--smoke", "--out", str(tmp_path),
            "--compare", str(old),
        ])
        assert code == 0

    def test_regression_exits_nonzero(self, stubbed_bench, tmp_path, capsys):
        old = write_artifact(stubbed_bench, out_dir=tmp_path / "old",
                             smoke=True, date="2026-01-01")
        doctored = json.loads(old.read_text())
        for entry in doctored["results"]:
            if entry["name"] == "pipelined_driver":  # sim-time: always gated
                entry["speedup"] = entry["speedup"] * 10
        old.write_text(json.dumps(doctored))
        code = main([
            "bench", "--smoke", "--out", str(tmp_path),
            "--compare", str(old),
        ])
        assert code == 1
        assert "regressed" in capsys.readouterr().err.lower()
