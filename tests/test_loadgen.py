"""The overload drill's core invariants on a scaled-down fleet.

The full acceptance drill (50 tenants × 4 workflows) runs in
``repro bench`` and the CI ``loadtest-smoke`` job; these tests pin the
invariants on a smaller copy fast enough for tier-1.
"""

import pytest

from repro.loadgen import LoadgenConfig, run_loadtest


@pytest.fixture(scope="module")
def smoke_report():
    cfg = LoadgenConfig(
        n_tenants=6,
        workflows_per_tenant=2,
        seed=17,
        n_fiona8=2,
        mean_interarrival_s=20.0,
    )
    return run_loadtest(cfg)


def test_no_workflow_lost_or_hung(smoke_report):
    """Every workflow completes or is explicitly shed/rejected with a
    structured reason — none silently disappear."""
    report = smoke_report
    assert report.lost == 0
    assert report.hung == 0
    assert len(report.outcomes) == report.config.expected_workflows()
    for outcome in report.outcomes:
        assert outcome.outcome in ("completed", "shed", "rejected", "failed")
        if outcome.outcome != "completed":
            assert outcome.reason, f"{outcome} has no structured reason"
    assert report.counts["completed"] > 0
    assert report.counts["failed"] == 0


def test_chaos_injected_and_survived(smoke_report):
    assert smoke_report.chaos_failures > 0


def test_metrics_summarized(smoke_report):
    report = smoke_report
    assert report.scheduler_throughput > 0
    assert report.makespan_s > 0
    assert "high" in report.latency_by_class
    assert "batch" in report.latency_by_class
    for pcts in report.latency_by_class.values():
        assert pcts["p50"] <= pcts["p99"]


def test_drill_is_deterministic(smoke_report):
    cfg = LoadgenConfig(
        n_tenants=6,
        workflows_per_tenant=2,
        seed=17,
        n_fiona8=2,
        mean_interarrival_s=20.0,
    )
    rerun = run_loadtest(cfg)
    assert rerun.checksum() == smoke_report.checksum()
    assert rerun.outcome_summary() == smoke_report.outcome_summary()


def test_different_seed_changes_the_drill(smoke_report):
    cfg = LoadgenConfig(
        n_tenants=6,
        workflows_per_tenant=2,
        seed=18,
        n_fiona8=2,
        mean_interarrival_s=20.0,
    )
    other = run_loadtest(cfg)
    assert other.lost == 0 and other.hung == 0
    # The checksum hashes the outcome multiset, so two healthy seeds can
    # legitimately collide (everything completed); the seed must still
    # move the underlying timeline.
    timeline = sorted(o.submitted_at for o in other.outcomes)
    baseline = sorted(o.submitted_at for o in smoke_report.outcomes)
    assert timeline != baseline


def test_report_serializes(smoke_report):
    import json

    data = smoke_report.to_dict()
    json.dumps(data)  # JSON-safe
    assert data["counts"]["completed"] == smoke_report.counts["completed"]
    assert data["lost"] == 0
