"""Shared fixtures and helpers for cluster-layer tests."""

import pytest

from repro.cluster import (
    Cluster,
    ContainerSpec,
    PodSpec,
    ResourceRequirements,
    fiona8_node_spec,
    fiona_node_spec,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    """A small two-site cluster: 2 CPU FIONAs + 2 FIONA8 GPU nodes."""
    c = Cluster(env)
    c.add_node(fiona_node_spec("dtn-ucsd-01", site="UCSD"))
    c.add_node(fiona_node_spec("dtn-uci-01", site="UCI"))
    c.add_node(fiona8_node_spec("fiona8-ucsd-01", site="UCSD"))
    c.add_node(fiona8_node_spec("fiona8-uci-01", site="UCI"))
    return c


def sleeper_spec(duration=10.0, cpu=1, memory="1Gi", gpu=0, **pod_kwargs):
    """A pod spec whose container sleeps for ``duration`` then returns it."""

    def main(ctx):
        yield ctx.env.timeout(duration)
        return duration

    return PodSpec(
        containers=[
            ContainerSpec(
                name="main",
                image="repro/sleeper:1",
                main=main,
                resources=ResourceRequirements(cpu=cpu, memory=memory, gpu=gpu),
            )
        ],
        **pod_kwargs,
    )


def crasher_spec(after=5.0, exc=None, **pod_kwargs):
    """A pod spec whose container raises after ``after`` seconds."""

    def main(ctx):
        yield ctx.env.timeout(after)
        raise exc or RuntimeError("container crashed")

    return PodSpec(
        containers=[
            ContainerSpec(
                name="main",
                image="repro/crasher:1",
                main=main,
                resources=ResourceRequirements(cpu=1, memory="1Gi"),
            )
        ],
        **pod_kwargs,
    )
