"""Tests for DaemonSets: one pod per (matching) node."""

import pytest

from repro.cluster import Cluster, PodPhase, fiona8_node_spec, fiona_node_spec
from repro.cluster.controllers import DaemonSetSpec
from repro.cluster import ContainerSpec, PodSpec, ResourceRequirements
from repro.sim import Environment


def exporter_template(node_name: str) -> PodSpec:
    def main(ctx):
        while True:  # per-node agent runs forever
            yield ctx.env.timeout(60.0)

    return PodSpec(
        containers=[
            ContainerSpec(
                name="node-exporter",
                image="prom/node-exporter:1.5",
                main=main,
                resources=ResourceRequirements(cpu="100m", memory="128Mi"),
            )
        ]
    )


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    c = Cluster(env)
    c.add_node(fiona_node_spec("cpu-a"))
    c.add_node(fiona8_node_spec("gpu-a"))
    c.add_node(fiona8_node_spec("gpu-b"))
    return c


class TestDaemonSet:
    def test_one_pod_per_node(self, cluster, env):
        ds = cluster.create_daemonset(
            "node-exporter", DaemonSetSpec(template=exporter_template)
        )
        env.run(until=30)
        assert ds.ready_count == 3
        placements = {p.node_name for p in ds.pods.values()}
        assert placements == {"cpu-a", "gpu-a", "gpu-b"}

    def test_node_selector_restricts(self, cluster, env):
        ds = cluster.create_daemonset(
            "gpu-agent",
            DaemonSetSpec(
                template=exporter_template,
                node_selector={"fiona": "fiona8"},
            ),
        )
        env.run(until=30)
        assert set(ds.pods) == {"gpu-a", "gpu-b"}

    def test_new_node_gets_pod(self, cluster, env):
        ds = cluster.create_daemonset(
            "node-exporter", DaemonSetSpec(template=exporter_template)
        )
        env.run(until=30)
        cluster.add_node(fiona_node_spec("cpu-late"))
        env.run(until=60)
        assert "cpu-late" in ds.pods
        assert ds.pods["cpu-late"].phase is PodPhase.RUNNING

    def test_failed_node_pod_dropped_then_restored(self, cluster, env):
        ds = cluster.create_daemonset(
            "node-exporter", DaemonSetSpec(template=exporter_template)
        )
        env.run(until=30)
        cluster.fail_node("gpu-a")
        env.run(until=60)
        assert "gpu-a" not in ds.pods
        assert ds.ready_count == 2
        cluster.recover_node("gpu-a")
        env.run(until=120)
        assert ds.pods["gpu-a"].phase is PodPhase.RUNNING

    def test_cordoned_node_excluded(self, cluster, env):
        cluster.cordon("cpu-a")
        ds = cluster.create_daemonset(
            "node-exporter", DaemonSetSpec(template=exporter_template)
        )
        env.run(until=30)
        assert "cpu-a" not in ds.pods

    def test_delete_tears_down(self, cluster, env):
        ds = cluster.create_daemonset(
            "node-exporter", DaemonSetSpec(template=exporter_template)
        )
        env.run(until=30)
        ds.delete()
        env.run(until=60)
        assert ds.ready_count == 0
        assert not cluster.list_pods(phase=PodPhase.RUNNING)

    def test_duplicate_rejected(self, cluster):
        from repro.errors import ConflictError

        cluster.create_daemonset(
            "x", DaemonSetSpec(template=exporter_template)
        )
        with pytest.raises(ConflictError):
            cluster.create_daemonset(
                "x", DaemonSetSpec(template=exporter_template)
            )
