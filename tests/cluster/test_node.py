"""Unit tests for nodes, FIONA specs, and resource accounting."""

import pytest

from repro.cluster import (
    Node,
    NodeSpec,
    ObjectMeta,
    Pod,
    ResourceRequirements,
    fiona8_node_spec,
    fiona_node_spec,
)
from repro.cluster.quantity import GiB
from repro.errors import ClusterError
from tests.cluster.conftest import sleeper_spec


def make_pod(name="p", **kwargs):
    return Pod(ObjectMeta(name=name), sleeper_spec(**kwargs))


class TestFionaSpecs:
    def test_basic_fiona_matches_paper(self):
        """Paper §II: dual 12-core CPUs, 96 GB RAM, 1 TB SSD, two 10GbE."""
        spec = fiona_node_spec("dtn-01")
        assert spec.cpu == 24
        assert spec.memory == 96 * GiB
        assert spec.gpus == 0
        assert spec.local_storage == 1024**4
        assert spec.nics_gbps == (10.0, 10.0)

    def test_fiona8_has_eight_gpus(self):
        """Paper §II: FIONA8 machines contain eight game GPUs each."""
        spec = fiona8_node_spec("fiona8-01")
        assert spec.gpus == 8
        assert spec.gpu_model == "nvidia-1080ti"

    def test_site_label_propagates(self):
        node = Node(fiona_node_spec("n", site="UCI"))
        assert node.meta.labels["site"] == "UCI"


class TestNodeAccounting:
    def test_free_equals_capacity_initially(self):
        node = Node(fiona8_node_spec("n"))
        assert node.free.cpu == 24
        assert node.free.gpu == 8

    def test_allocate_reduces_free(self):
        node = Node(fiona8_node_spec("n"))
        pod = make_pod(cpu=4, memory="8Gi", gpu=2)
        node.allocate(pod)
        assert node.free.cpu == 20
        assert node.free.gpu == 6
        assert node.free.memory == (96 - 8) * GiB

    def test_release_restores_free(self):
        node = Node(fiona8_node_spec("n"))
        pod = make_pod(cpu=4, gpu=2)
        node.allocate(pod)
        node.release(pod)
        assert node.free.cpu == 24
        assert node.free.gpu == 8
        assert node.pods == {}

    def test_release_is_idempotent(self):
        node = Node(fiona8_node_spec("n"))
        pod = make_pod(cpu=4)
        node.allocate(pod)
        node.release(pod)
        node.release(pod)
        assert node.free.cpu == 24

    def test_overcommit_rejected(self):
        node = Node(fiona_node_spec("n"))
        with pytest.raises(ClusterError):
            node.allocate(make_pod(cpu=25))

    def test_gpu_overcommit_rejected(self):
        node = Node(fiona8_node_spec("n"))
        node.allocate(make_pod("a", gpu=8))
        with pytest.raises(ClusterError):
            node.allocate(make_pod("b", gpu=1))


class TestDevicePlugin:
    def test_gpu_devices_assigned_on_allocate(self):
        node = Node(fiona8_node_spec("n"))
        pod = make_pod(gpu=3)
        node.allocate(pod)
        assert len(pod.assigned_gpus) == 3
        assert all(g.startswith("n/gpu") for g in pod.assigned_gpus)
        assert node.gpu_in_use() == 3

    def test_devices_freed_on_release(self):
        node = Node(fiona8_node_spec("n"))
        pod = make_pod(gpu=8)
        node.allocate(pod)
        node.release(pod)
        assert node.gpu_in_use() == 0

    def test_distinct_devices_per_pod(self):
        node = Node(fiona8_node_spec("n"))
        a, b = make_pod("a", gpu=4), make_pod("b", gpu=4)
        node.allocate(a)
        node.allocate(b)
        assert set(a.assigned_gpus).isdisjoint(b.assigned_gpus)

    def test_extended_resources_advertised(self):
        gpu_node = Node(fiona8_node_spec("g"))
        cpu_node = Node(fiona_node_spec("c"))
        assert gpu_node.extended_resources() == {"nvidia.com/gpu": 8}
        assert cpu_node.extended_resources() == {}


class TestResourceRequirements:
    def test_add(self):
        total = ResourceRequirements(cpu=1, memory=100, gpu=1) + ResourceRequirements(
            cpu="500m", memory=50
        )
        assert total.cpu == 1.5
        assert total.memory == 150
        assert total.gpu == 1

    def test_fits_within(self):
        big = ResourceRequirements(cpu=8, memory=1000, gpu=2)
        small = ResourceRequirements(cpu=2, memory=500)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_negative_gpu_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequirements(gpu=-1)

    def test_fractional_gpu_rejected(self):
        with pytest.raises(ValueError):
            ResourceRequirements(gpu=0.5)
