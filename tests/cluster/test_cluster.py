"""Integration tests: pod lifecycle, scheduling, self-healing, namespaces."""

import pytest

from repro.cluster import (
    Cluster,
    JobSpec,
    PodPhase,
    ReplicaSetSpec,
    ResourceQuota,
    fiona8_node_spec,
    fiona_node_spec,
)
from repro.cluster.cluster import POD_STARTUP_SECONDS
from repro.errors import ConflictError, NotFoundError, QuotaExceededError
from repro.sim import Environment
from tests.cluster.conftest import crasher_spec, sleeper_spec


class TestPodLifecycle:
    def test_pod_runs_to_completion(self, cluster, env):
        pod = cluster.create_pod("p1", sleeper_spec(duration=30))
        assert pod.phase is PodPhase.PENDING
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.result == 30
        assert pod.node_name is not None

    def test_image_pull_and_startup_latency(self, cluster, env):
        pod = cluster.create_pod("p1", sleeper_spec(duration=10))
        env.run()
        node = cluster.get_node(pod.node_name)
        expected = node.spec.image_pull_seconds + POD_STARTUP_SECONDS + 10
        assert pod.finish_time == pytest.approx(expected)

    def test_warm_image_skips_pull(self, cluster, env):
        first = cluster.create_pod("p1", sleeper_spec(duration=5))
        env.run()
        node = cluster.get_node(first.node_name)
        # Force the second pod onto the same node via hostname selector.
        second = cluster.create_pod(
            "p2",
            sleeper_spec(
                duration=5,
                node_selector={"kubernetes.io/hostname": node.spec.name},
            ),
        )
        start = env.now
        env.run()
        assert second.finish_time - start == pytest.approx(POD_STARTUP_SECONDS + 5)

    def test_resources_released_after_completion(self, cluster, env):
        cluster.create_pod("p1", sleeper_spec(duration=5, cpu=8))
        env.run()
        assert all(n.allocated.cpu == 0 for n in cluster.nodes.values())
        ns = cluster.get_namespace("default")
        assert ns.used.cpu == 0
        assert ns.pod_count == 0

    def test_failing_container_fails_pod(self, cluster, env):
        pod = cluster.create_pod("p1", crasher_spec(after=5))
        env.run()
        assert pod.phase is PodPhase.FAILED
        assert isinstance(pod.failure, RuntimeError)

    def test_duplicate_pod_name_rejected(self, cluster, env):
        cluster.create_pod("p1", sleeper_spec(duration=100))
        with pytest.raises(ConflictError):
            cluster.create_pod("p1", sleeper_spec())

    def test_name_reusable_after_termination(self, cluster, env):
        cluster.create_pod("p1", sleeper_spec(duration=1))
        env.run()
        cluster.create_pod("p1", sleeper_spec(duration=1))
        env.run()

    def test_delete_running_pod(self, cluster, env):
        pod = cluster.create_pod("p1", sleeper_spec(duration=1000))
        env.run(until=100)
        assert pod.phase is PodPhase.RUNNING
        cluster.delete_pod(pod)
        env.run()
        assert pod.phase is PodPhase.FAILED
        assert all(n.allocated.cpu == 0 for n in cluster.nodes.values())

    def test_pod_events_logged(self, cluster, env):
        cluster.create_pod("p1", sleeper_spec(duration=1))
        env.run()
        reasons = [e.reason for e in cluster.events_for("Pod", "p1")]
        assert reasons[:2] == ["Created", "Scheduled"]
        assert "Started" in reasons
        assert "Succeeded" in reasons


class TestScheduling:
    def test_gpu_pod_lands_on_gpu_node(self, cluster, env):
        pod = cluster.create_pod("g1", sleeper_spec(duration=5, gpu=2))
        env.run()
        assert pod.node_name.startswith("fiona8")
        assert len(pod.assigned_gpus) == 2

    def test_node_selector_respected(self, cluster, env):
        pod = cluster.create_pod(
            "p1", sleeper_spec(duration=5, node_selector={"site": "UCI"})
        )
        env.run()
        assert cluster.get_node(pod.node_name).spec.site == "UCI"

    def test_unschedulable_pod_stays_pending(self, cluster, env):
        pod = cluster.create_pod("p1", sleeper_spec(gpu=100))
        env.run()
        assert pod.phase is PodPhase.PENDING
        assert pod in cluster.pending_pods()

    def test_pending_pod_scheduled_when_capacity_frees(self, cluster, env):
        # Fill all GPU capacity (2 nodes x 8 GPUs).
        for i in range(2):
            cluster.create_pod(f"big{i}", sleeper_spec(duration=50, gpu=8))
        waiter = cluster.create_pod("waiter", sleeper_spec(duration=5, gpu=8))
        env.run(until=30)
        assert waiter.phase is PodPhase.PENDING
        env.run()
        assert waiter.phase is PodPhase.SUCCEEDED

    def test_pending_pod_scheduled_when_node_joins(self, cluster, env):
        cluster.create_pod("hog1", sleeper_spec(duration=9999, gpu=8, cpu=20))
        cluster.create_pod("hog2", sleeper_spec(duration=9999, gpu=8, cpu=20))
        pod = cluster.create_pod("p1", sleeper_spec(duration=5, gpu=8, cpu=20))
        env.run(until=50)
        assert pod.phase is PodPhase.PENDING
        cluster.add_node(fiona8_node_spec("fiona8-new"))
        env.run(until=200)
        assert pod.phase is PodPhase.SUCCEEDED

    def test_spread_distributes_load(self, env):
        cluster = Cluster(env)
        for i in range(4):
            cluster.add_node(fiona_node_spec(f"n{i}"))
        for i in range(4):
            cluster.create_pod(f"p{i}", sleeper_spec(duration=100, cpu=4))
        env.run(until=50)
        used_nodes = {
            p.node_name for p in cluster.list_pods(phase=PodPhase.RUNNING)
        }
        assert len(used_nodes) == 4

    def test_taints_require_toleration(self, env):
        cluster = Cluster(env)
        spec = fiona_node_spec("tainted")
        spec.taints["reserved"] = "true"
        cluster.add_node(spec)
        blocked = cluster.create_pod("no-tol", sleeper_spec(duration=1))
        allowed = cluster.create_pod(
            "tol", sleeper_spec(duration=1, tolerations={"reserved"})
        )
        env.run()
        assert blocked.phase is PodPhase.PENDING
        assert allowed.phase is PodPhase.SUCCEEDED


class TestSelfHealing:
    def test_node_failure_fails_its_pods(self, cluster, env):
        pod = cluster.create_pod("p1", sleeper_spec(duration=1000))
        env.run(until=100)
        node_name = pod.node_name
        cluster.fail_node(node_name)
        env.run(until=101)
        assert pod.phase is PodPhase.FAILED
        assert cluster.get_node(node_name).pods == {}

    def test_job_reschedules_pods_from_lost_node(self, cluster, env):
        job = cluster.create_job(
            "j1",
            JobSpec(template=lambda i: sleeper_spec(duration=100), completions=1),
        )
        env.run(until=50)
        (pod,) = job.active.values()
        cluster.fail_node(pod.node_name)
        env.run()
        assert job.is_complete
        # The replacement ran on a different (still-ready) node.
        assert len(cluster.events_for("Node")) >= 1

    def test_recovered_node_accepts_pods_again(self, cluster, env):
        for name in list(cluster.nodes):
            cluster.fail_node(name)
        pod = cluster.create_pod("p1", sleeper_spec(duration=5))
        env.run(until=10)
        assert pod.phase is PodPhase.PENDING
        cluster.recover_node("dtn-ucsd-01")
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED


class TestJobs:
    def test_job_runs_all_completions(self, cluster, env):
        job = cluster.create_job(
            "j1",
            JobSpec(
                template=lambda i: sleeper_spec(duration=10 + i),
                completions=5,
                parallelism=2,
            ),
        )
        env.run()
        assert job.is_complete
        assert job.succeeded_indices == set(range(5))
        assert job.results[3] == 13

    def test_parallelism_cap_respected(self, cluster, env):
        job = cluster.create_job(
            "j1",
            JobSpec(
                template=lambda i: sleeper_spec(duration=50),
                completions=6,
                parallelism=2,
            ),
        )
        env.run(until=30)
        assert job.active_count <= 2
        env.run()
        assert job.is_complete

    def test_backoff_limit_fails_job(self, cluster, env):
        job = cluster.create_job(
            "j1",
            JobSpec(
                template=lambda i: crasher_spec(after=1),
                completions=1,
                backoff_limit=2,
            ),
        )
        job.completion_event.defuse()
        env.run()
        assert job.is_failed
        assert job.failed_count == 3  # initial + 2 retries

    def test_waiting_on_completion_event(self, cluster, env):
        job = cluster.create_job(
            "j1",
            JobSpec(template=lambda i: sleeper_spec(duration=7), completions=2,
                    parallelism=2),
        )

        def waiter(env):
            results = yield job.completion_event
            return results

        p = env.process(waiter(env))
        results = env.run(until=p)
        assert set(results) == {0, 1}

    def test_job_duration_measured(self, cluster, env):
        job = cluster.create_job(
            "j1", JobSpec(template=lambda i: sleeper_spec(duration=10))
        )
        env.run()
        assert job.duration > 10


class TestReplicaSets:
    def test_maintains_replicas(self, cluster, env):
        rs = cluster.create_replicaset(
            "rs1", ReplicaSetSpec(template=lambda i: sleeper_spec(duration=20),
                                  replicas=3)
        )
        env.run(until=18)  # image pull (15s) + startup (2s) already elapsed
        assert rs.ready_count == 3
        # Replicas that finish (t=37) are replaced and running again by t=56.
        env.run(until=56)
        assert rs.ready_count == 3

    def test_scale_up_and_down(self, cluster, env):
        rs = cluster.create_replicaset(
            "rs1", ReplicaSetSpec(template=lambda i: sleeper_spec(duration=1e6),
                                  replicas=2)
        )
        env.run(until=10)
        rs.scale(4)
        env.run(until=40)
        assert rs.ready_count == 4
        rs.scale(1)
        env.run(until=50)
        assert rs.ready_count == 1

    def test_delete_tears_down(self, cluster, env):
        rs = cluster.create_replicaset(
            "rs1", ReplicaSetSpec(template=lambda i: sleeper_spec(duration=1e6),
                                  replicas=2)
        )
        env.run(until=10)
        rs.delete()
        env.run(until=20)
        assert rs.ready_count == 0
        assert not cluster.list_pods(phase=PodPhase.RUNNING)


class TestNamespaces:
    def test_quota_blocks_admission(self, cluster, env):
        cluster.create_namespace("ml", quota=ResourceQuota(gpu=4))
        cluster.create_pod("a", sleeper_spec(duration=100, gpu=3), namespace="ml")
        with pytest.raises(QuotaExceededError):
            cluster.create_pod("b", sleeper_spec(gpu=2), namespace="ml")

    def test_quota_released_on_completion(self, cluster, env):
        cluster.create_namespace("ml", quota=ResourceQuota(gpu=4))
        cluster.create_pod("a", sleeper_spec(duration=10, gpu=4), namespace="ml")
        env.run()
        cluster.create_pod("b", sleeper_spec(duration=10, gpu=4), namespace="ml")
        env.run()

    def test_namespace_isolation_of_names(self, cluster, env):
        cluster.create_namespace("alpha")
        cluster.create_namespace("beta")
        cluster.create_pod("same", sleeper_spec(duration=1e5), namespace="alpha")
        cluster.create_pod("same", sleeper_spec(duration=1e5), namespace="beta")
        assert len(cluster.list_pods()) == 2
        assert len(cluster.list_pods(namespace="alpha")) == 1

    def test_administrator_manages_users(self, cluster):
        ns = cluster.create_namespace("lab", administrator="pi@ucsd.edu")
        ns.add_user("student@ucsd.edu", added_by="pi@ucsd.edu")
        assert "student@ucsd.edu" in ns.users
        with pytest.raises(PermissionError):
            ns.add_user("foe@x.com", added_by="student@ucsd.edu")

    def test_unknown_namespace_rejected(self, cluster):
        with pytest.raises(NotFoundError):
            cluster.create_pod("p", sleeper_spec(), namespace="ghost")


class TestServices:
    def test_endpoints_track_running_pods(self, cluster, env):
        svc = cluster.create_service("workers", selector={"app": "train"})
        rs = cluster.create_replicaset(
            "train",
            ReplicaSetSpec(template=lambda i: sleeper_spec(duration=1e6), replicas=2),
            labels={"app": "train"},
        )
        assert svc.endpoints() == []
        env.run(until=30)
        assert len(svc.endpoints()) == 2
        rs.scale(0)
        env.run(until=40)
        assert svc.endpoints() == []

    def test_hostname_resolution(self, cluster, env):
        cluster.create_namespace("ml")
        svc = cluster.create_service("ps", selector={"role": "ps"}, namespace="ml")
        assert svc.hostname == "ps.ml.svc.cluster.local"
        assert cluster.resolve_hostname("ps.ml.svc.cluster.local") is svc

    def test_resolve_round_robin(self, cluster, env):
        svc = cluster.create_service("w", selector={"app": "w"})
        cluster.create_replicaset(
            "w",
            ReplicaSetSpec(template=lambda i: sleeper_spec(duration=1e6), replicas=3),
            labels={"app": "w"},
        )
        env.run(until=30)
        picks = {svc.resolve().meta.name for _ in range(3)}
        assert len(picks) == 3
