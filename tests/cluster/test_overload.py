"""Control-plane behavior under overload.

Three properties the multi-tenant story depends on:

1. **Preemption ordering** — when a high-priority pod cannot fit, the
   scheduler evicts the *lowest*-priority victims first and leaves
   higher-priority pods running.
2. **Fair-share starvation-freedom** — a light tenant submitting into a
   cluster already saturated by a heavy tenant still gets scheduled
   promptly; weighted DRF ordering prevents FIFO starvation.
3. **Backpressure determinism** — the gateway's admit/queue/reject
   decision sequence (including ``retry_after_s`` hints) is identical
   run-to-run on a fixed seed.
"""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    PodPhase,
    fiona8_node_spec,
    fiona_node_spec,
)
from repro.cluster.namespace import ResourceQuota
from repro.gateway import (
    ADMITTED,
    QUEUED,
    REJECTED,
    SHED,
    AdmissionGateway,
    BreakerState,
    GatewayConfig,
    TenantPolicy,
)
from repro.sim import Environment
from repro.sim.rng import derive_seed
from tests.cluster.conftest import sleeper_spec


# ------------------------------------------------------ preemption ordering


class TestPreemptionOrdering:
    def _one_node_cluster(self, env):
        c = Cluster(env)
        c.add_node(fiona8_node_spec("fiona8-00"))
        return c

    def test_lowest_priority_victims_evicted_first(self):
        env = Environment()
        cluster = self._one_node_cluster(env)
        # Fill all 8 GPUs: two batch(10) + two normal(100) pods.
        batch = [
            cluster.create_pod(
                f"batch-{i}",
                sleeper_spec(duration=500, gpu=2, priority_class="batch"),
            )
            for i in range(2)
        ]
        normal = [
            cluster.create_pod(
                f"normal-{i}",
                sleeper_spec(duration=500, gpu=2, priority_class="normal"),
            )
            for i in range(2)
        ]
        env.run(until=60)
        assert all(p.phase is PodPhase.RUNNING for p in batch + normal)

        # A high(1000) pod needing 4 GPUs must evict exactly the two
        # batch pods — never the normal ones.
        high = cluster.create_pod(
            "high-0", sleeper_spec(duration=50, gpu=4, priority_class="high")
        )
        env.run(until=200)
        assert high.phase in (PodPhase.RUNNING, PodPhase.SUCCEEDED)
        for p in batch:
            assert p.phase is PodPhase.FAILED
            assert p.termination_reason == "Preempted"
        for p in normal:
            assert p.phase is PodPhase.RUNNING

    def test_preempting_pod_gets_freed_capacity_first(self):
        """Victim capacity must go to the high-priority pod that caused
        the eviction, not to other pending low-priority pods."""
        env = Environment()
        cluster = self._one_node_cluster(env)
        low = cluster.create_pod(
            "low", sleeper_spec(duration=500, gpu=8, priority_class="batch")
        )
        env.run(until=60)
        assert low.phase is PodPhase.RUNNING
        # Queue a batch pod first, then the high pod that triggers the
        # eviction: priority-tier ordering must bind high first.
        waiting = cluster.create_pod(
            "waiting", sleeper_spec(duration=50, gpu=8, priority_class="batch")
        )
        high = cluster.create_pod(
            "high", sleeper_spec(duration=50, gpu=8, priority_class="high")
        )
        env.run(until=300)
        assert low.termination_reason == "Preempted"
        assert high.phase is PodPhase.SUCCEEDED
        assert waiting.phase in (PodPhase.RUNNING, PodPhase.SUCCEEDED)
        assert high.start_time < waiting.start_time

    def test_best_effort_never_preempts(self):
        env = Environment()
        cluster = self._one_node_cluster(env)
        low = cluster.create_pod(
            "low", sleeper_spec(duration=500, gpu=8, priority_class="batch")
        )
        env.run(until=60)
        zero = cluster.create_pod(
            "zero", sleeper_spec(duration=10, gpu=8)  # priority 0
        )
        env.run(until=200)
        assert low.phase is PodPhase.RUNNING
        assert zero.phase is PodPhase.PENDING


# --------------------------------------------- fair-share starvation-freedom


class TestFairShareStarvationFreedom:
    def test_light_tenant_not_starved_behind_heavy_backlog(self):
        env = Environment()
        cluster = Cluster(env)
        cluster.add_node(fiona_node_spec("dtn-00"))  # CPU-only node
        cluster.create_namespace("heavy", weight=1.0)
        cluster.create_namespace("light", weight=1.0)

        # Saturate: each pod takes half the node's CPU for 30s, so two
        # run at a time and a deep heavy backlog forms.
        cpu = cluster.nodes["dtn-00"].capacity.cpu / 2
        heavy = [
            cluster.create_pod(
                f"h{i}",
                sleeper_spec(duration=30, cpu=cpu),
                namespace="heavy",
            )
            for i in range(12)
        ]
        env.run(until=5)
        light = [
            cluster.create_pod(
                f"l{i}",
                sleeper_spec(duration=30, cpu=cpu),
                namespace="light",
            )
            for i in range(2)
        ]
        env.run()
        assert all(p.phase is PodPhase.SUCCEEDED for p in heavy + light)
        # Starvation-freedom: the light pods bound while most of the
        # heavy backlog was still waiting — strictly before the last
        # heavy pod, and within the first half of the heavy binds.
        heavy_starts = sorted(p.start_time for p in heavy)
        for p in light:
            assert p.start_time < heavy_starts[-1]
            assert p.start_time <= heavy_starts[len(heavy) // 2]

    def test_namespace_weight_biases_share(self):
        """A weight-4 tenant's equal backlog drains ahead of a weight-1
        tenant's: its median bind time is strictly earlier."""
        env = Environment()
        cluster = Cluster(env)
        cluster.add_node(fiona_node_spec("dtn-00"))
        cluster.create_namespace("gold", weight=4.0)
        cluster.create_namespace("bronze", weight=1.0)
        cpu = cluster.nodes["dtn-00"].capacity.cpu / 2
        gold, bronze = [], []
        for i in range(8):
            gold.append(
                cluster.create_pod(
                    f"g{i}", sleeper_spec(duration=30, cpu=cpu), namespace="gold"
                )
            )
            bronze.append(
                cluster.create_pod(
                    f"b{i}",
                    sleeper_spec(duration=30, cpu=cpu),
                    namespace="bronze",
                )
            )
        env.run()
        assert all(p.phase is PodPhase.SUCCEEDED for p in gold + bronze)
        median_gold = sorted(p.start_time for p in gold)[4]
        median_bronze = sorted(p.start_time for p in bronze)[4]
        assert median_gold < median_bronze


# ------------------------------------------------- backpressure determinism


def _run_backpressure_scenario(seed: int):
    """One seeded burst of submissions through a tight gateway; returns
    the full decision log."""
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node(fiona_node_spec("dtn-00"))
    gateway = AdmissionGateway(
        cluster,
        GatewayConfig(max_queue_depth=2, pending_timeout_s=0.0),
    )
    gateway.register_tenant(
        "acme", TenantPolicy(rate=0.2, burst=1.0)
    )
    rng = np.random.default_rng(derive_seed(seed, "backpressure-test"))
    decisions = []

    def submitter():
        for i in range(12):
            yield env.timeout(float(rng.uniform(0.0, 2.0)))
            decision = gateway.submit(
                f"p{i}", sleeper_spec(duration=5, cpu=1), tenant="acme"
            )
            decisions.append(decision)

    env.process(submitter())
    env.run(until=300)
    return [
        (
            d.pod_name,
            d.outcome,
            d.reason,
            round(d.retry_after_s, 9),
            round(d.submitted_at, 9),
        )
        for d in decisions
    ]


class TestBackpressureDeterminism:
    def test_identical_decision_log_on_fixed_seed(self):
        first = _run_backpressure_scenario(seed=11)
        second = _run_backpressure_scenario(seed=11)
        assert first == second
        outcomes = {outcome for _n, outcome, _r, _ra, _t in first}
        assert REJECTED in outcomes, "scenario never hit backpressure"
        rejected = [d for d in first if d[1] == REJECTED]
        assert all(r[2] == "Backpressure" for r in rejected)
        assert all(r[3] > 0.0 for r in rejected), "no retry_after hint"

    def test_different_seed_changes_the_log(self):
        assert _run_backpressure_scenario(seed=11) != _run_backpressure_scenario(
            seed=12
        )


# ------------------------------------------------------- gateway behaviors


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gw_cluster(env):
    c = Cluster(env)
    c.add_node(fiona8_node_spec("fiona8-00"))
    return c


class TestGateway:
    def test_burst_admits_then_queues_then_rejects(self, env, gw_cluster):
        gateway = AdmissionGateway(
            gw_cluster, GatewayConfig(max_queue_depth=2)
        )
        gateway.register_tenant("acme", TenantPolicy(rate=1.0, burst=2.0))
        outcomes = [
            gateway.submit(
                f"p{i}", sleeper_spec(duration=1, cpu=0.5), tenant="acme"
            ).outcome
            for i in range(6)
        ]
        assert outcomes == [
            ADMITTED, ADMITTED, QUEUED, QUEUED, REJECTED, REJECTED
        ]
        last = gateway.decisions[-1]
        assert last.reason == "Backpressure"
        assert last.retry_after_s > 0
        # The queue drains at the sustained rate; queued decisions
        # resolve to admitted.
        env.run(until=60)
        finals = [d.outcome for d in gateway.decisions if d.pod_name == "p2"]
        assert finals == [ADMITTED]

    def test_quota_rejection_is_structured(self, env, gw_cluster):
        gateway = AdmissionGateway(gw_cluster, GatewayConfig())
        gateway.register_tenant(
            "acme",
            TenantPolicy(rate=10.0, burst=10.0, quota=ResourceQuota(max_pods=1)),
        )
        first = gateway.submit("a", sleeper_spec(duration=5), tenant="acme")
        second = gateway.submit("b", sleeper_spec(duration=5), tenant="acme")
        assert first.outcome == ADMITTED
        assert (second.outcome, second.reason) == (REJECTED, "QuotaExceeded")

    def test_lint_rejects_unschedulable_spec(self, env, gw_cluster):
        gateway = AdmissionGateway(gw_cluster, GatewayConfig())
        gateway.register_tenant("acme", TenantPolicy(rate=10.0, burst=10.0))
        decision = gateway.submit(
            "huge", sleeper_spec(duration=5, gpu=16), tenant="acme"
        )
        assert decision.outcome == REJECTED
        assert decision.reason == "AdmissionLint:SPEC001"
        assert ("acme", "huge") not in gw_cluster.pods

    def test_scheduling_timeout_sheds_and_trips_breaker(self, env, gw_cluster):
        gateway = AdmissionGateway(
            gw_cluster,
            GatewayConfig(
                pending_timeout_s=30.0,
                breaker_failure_threshold=2,
                breaker_cooldown_s=100.0,
            ),
        )
        gateway.register_tenant("acme", TenantPolicy(rate=10.0, burst=10.0))
        # 8 GPUs each, three pods: the first binds, the rest can never
        # fit and are shed by the watchdog after 30s.
        pods = [
            gateway.submit(
                f"p{i}", sleeper_spec(duration=500, gpu=8), tenant="acme"
            ).pod
            for i in range(3)
        ]
        env.run(until=60)
        assert pods[0].phase is PodPhase.RUNNING
        for pod in pods[1:]:
            assert pod.phase is PodPhase.FAILED
            assert gateway.shed_reasons[pod.meta.uid] == "SchedulingTimeout"
        # Two sheds tripped the breaker: the next submission is shed at
        # the door with a retry hint.
        assert gateway.breaker_state("acme") is BreakerState.OPEN
        decision = gateway.submit(
            "late", sleeper_spec(duration=5), tenant="acme"
        )
        assert (decision.outcome, decision.reason) == (SHED, "CircuitOpen")
        assert decision.retry_after_s > 0

    def test_breaker_half_opens_and_recovers(self, env, gw_cluster):
        gateway = AdmissionGateway(
            gw_cluster,
            GatewayConfig(
                pending_timeout_s=30.0,
                breaker_failure_threshold=1,
                breaker_cooldown_s=50.0,
            ),
        )
        gateway.register_tenant("acme", TenantPolicy(rate=10.0, burst=10.0))
        gateway.submit("p0", sleeper_spec(duration=500, gpu=8), tenant="acme")
        doomed = gateway.submit(
            "p1", sleeper_spec(duration=500, gpu=8), tenant="acme"
        )
        env.run(until=40)  # watchdog sheds p1 -> breaker opens
        assert doomed.pod.phase is PodPhase.FAILED
        assert gateway.breaker_state("acme") is BreakerState.OPEN
        env.run(until=100)  # past cooldown
        assert gateway.breaker_state("acme") is BreakerState.HALF_OPEN
        # The half-open probe admits; the pod binding (Running) closes
        # the breaker again.
        probe = gateway.submit(
            "probe", sleeper_spec(duration=5, cpu=0.5), tenant="acme"
        )
        assert probe.outcome == ADMITTED
        env.run(until=130)
        assert gateway.breaker_state("acme") is BreakerState.CLOSED

    def test_tenant_default_priority_class_is_stamped(self, env, gw_cluster):
        gateway = AdmissionGateway(gw_cluster, GatewayConfig())
        gateway.register_tenant(
            "acme", TenantPolicy(rate=10.0, burst=10.0, priority_class="high")
        )
        decision = gateway.submit(
            "p", sleeper_spec(duration=5), tenant="acme"
        )
        assert decision.pod.spec.priority_class == "high"
        assert decision.pod.spec.priority == 1000
        # An explicit class on the spec wins over the tenant default.
        explicit = gateway.submit(
            "q",
            sleeper_spec(duration=5, priority_class="batch"),
            tenant="acme",
        )
        assert explicit.pod.spec.priority_class == "batch"

    def test_admit_helper_waits_out_the_queue(self, env, gw_cluster):
        gateway = AdmissionGateway(gw_cluster, GatewayConfig())
        gateway.register_tenant("acme", TenantPolicy(rate=0.5, burst=1.0))
        results = []

        def flow():
            for i in range(3):
                decision = yield from gateway.admit(
                    f"p{i}", sleeper_spec(duration=1, cpu=0.5), tenant="acme"
                )
                results.append((decision.pod_name, decision.outcome))

        env.process(flow())
        env.run(until=60)
        assert results == [(f"p{i}", ADMITTED) for i in range(3)]
