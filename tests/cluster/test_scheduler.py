"""Unit tests for the scheduler's filter/score phases in isolation."""

import pytest

from repro.cluster import (
    Node,
    ObjectMeta,
    Pod,
    Scheduler,
    SchedulingStrategy,
    fiona8_node_spec,
    fiona_node_spec,
)
from tests.cluster.conftest import sleeper_spec


def make_pod(name="p", **kwargs):
    return Pod(ObjectMeta(name=name), sleeper_spec(**kwargs))


@pytest.fixture
def scheduler():
    return Scheduler(SchedulingStrategy.SPREAD)


class TestFilterPhase:
    def test_not_ready_filtered(self, scheduler):
        node = Node(fiona_node_spec("n"))
        node.ready = False
        result = scheduler.filter_node(make_pod(), node)
        assert not result.feasible
        assert "not ready" in result.reason

    def test_cordoned_filtered(self, scheduler):
        node = Node(fiona_node_spec("n"))
        node.unschedulable = True
        result = scheduler.filter_node(make_pod(), node)
        assert not result.feasible
        assert "cordoned" in result.reason

    def test_selector_mismatch_reason(self, scheduler):
        node = Node(fiona_node_spec("n", site="UCSD"))
        pod = make_pod(node_selector={"site": "UCI"})
        result = scheduler.filter_node(pod, node)
        assert not result.feasible
        assert "site=UCI" in result.reason

    def test_taint_reason(self, scheduler):
        spec = fiona_node_spec("n")
        spec.taints["gpu-only"] = "true"
        result = scheduler.filter_node(make_pod(), Node(spec))
        assert not result.feasible
        assert "taint" in result.reason

    def test_resource_reason(self, scheduler):
        node = Node(fiona_node_spec("n"))
        result = scheduler.filter_node(make_pod(cpu=100), node)
        assert not result.feasible
        assert "resources" in result.reason

    def test_explain_covers_all_nodes(self, scheduler):
        nodes = [Node(fiona_node_spec(f"n{i}")) for i in range(3)]
        nodes[0].ready = False
        results = scheduler.explain(make_pod(cpu=1), nodes)
        assert len(results) == 3
        assert [r.feasible for r in results] == [False, True, True]


class TestScorePhase:
    def test_spread_prefers_empty_node(self, scheduler):
        busy = Node(fiona_node_spec("busy"))
        busy.allocate(make_pod("holder", cpu=12))
        empty = Node(fiona_node_spec("empty"))
        pod = make_pod(cpu=1)
        assert scheduler.score_node(pod, empty) > scheduler.score_node(pod, busy)

    def test_binpack_prefers_loaded_node(self):
        scheduler = Scheduler(SchedulingStrategy.BIN_PACK)
        busy = Node(fiona_node_spec("busy"))
        busy.allocate(make_pod("holder", cpu=12))
        empty = Node(fiona_node_spec("empty"))
        pod = make_pod(cpu=1)
        assert scheduler.score_node(pod, busy) > scheduler.score_node(pod, empty)

    def test_image_locality_bonus(self, scheduler):
        warm = Node(fiona_node_spec("warm"))
        cold = Node(fiona_node_spec("cold"))
        pod = make_pod(cpu=1)
        warm.image_cache.add(pod.spec.containers[0].image)
        assert scheduler.score_node(pod, warm) > scheduler.score_node(pod, cold)

    def test_cpu_pod_avoids_gpu_node(self, scheduler):
        gpu_node = Node(fiona8_node_spec("gpu"))
        cpu_node = Node(fiona_node_spec("cpu"))
        pod = make_pod(cpu=1, gpu=0)
        assert scheduler.score_node(pod, cpu_node) > scheduler.score_node(
            pod, gpu_node
        )

    def test_select_deterministic_tie_break(self, scheduler):
        nodes = [Node(fiona_node_spec(name)) for name in ("zeb", "alpha", "mid")]
        pod = make_pod(cpu=1)
        chosen = scheduler.select(pod, nodes)
        assert chosen.spec.name == "alpha"  # lexicographic on ties

    def test_select_none_when_infeasible(self, scheduler):
        nodes = [Node(fiona_node_spec("n"))]
        assert scheduler.select(make_pod(cpu=999), nodes) is None


class TestPreemptionPlan:
    def test_no_plan_without_lower_priority(self, scheduler):
        node = Node(fiona8_node_spec("n"))
        holder = make_pod("holder", gpu=8)
        holder.spec.priority = 5
        node.allocate(holder)
        node.pods[holder.meta.uid] = holder
        wanter = make_pod("wanter", gpu=8)
        wanter.spec.priority = 5  # equal, not higher
        assert scheduler.preemption_plan(wanter, [node]) is None

    def test_plan_lists_minimal_victims(self, scheduler):
        node = Node(fiona8_node_spec("n"))
        small = []
        for i in range(4):
            p = make_pod(f"s{i}", gpu=2)
            node.allocate(p)
            small.append(p)
        wanter = make_pod("wanter", gpu=4)
        wanter.spec.priority = 10
        plan = scheduler.preemption_plan(wanter, [node])
        assert plan is not None
        target, victims = plan
        assert target is node
        assert len(victims) == 2  # exactly enough to free 4 GPUs
