"""Tests for pod liveness probes and the node heartbeat/lease controller."""

import pytest

from repro.cluster import (
    ContainerSpec,
    JobSpec,
    LivenessProbe,
    PodPhase,
    PodSpec,
    ResourceRequirements,
)
from repro.monitoring import MetricRegistry
from repro.testbed import build_nautilus_testbed

from .conftest import sleeper_spec


def _spec(main, liveness=None):
    return PodSpec(
        containers=[
            ContainerSpec(
                name="main",
                image="repro/liveness:1",
                main=main,
                resources=ResourceRequirements(cpu=1, memory="1Gi"),
            )
        ],
        liveness=liveness,
    )


def hung_spec(liveness, hang_s=1e6):
    """A container that makes no progress and never heartbeats."""

    def main(ctx):
        yield ctx.env.timeout(hang_s)

    return _spec(main, liveness)


def beating_spec(liveness, duration=60.0, beat_every=5.0):
    """A container that heartbeats while it works."""

    def main(ctx):
        elapsed = 0.0
        while elapsed < duration:
            yield ctx.env.timeout(beat_every)
            elapsed += beat_every
            ctx.heartbeat()
        return duration

    return _spec(main, liveness)


class TestLivenessProbe:
    def test_hung_pod_killed_and_charged_to_backoff_limit(self, cluster, env):
        cluster.metrics = MetricRegistry(env)
        probe = LivenessProbe(period_s=5.0, timeout_s=30.0)
        job = cluster.create_job(
            "hung",
            JobSpec(
                template=lambda i: hung_spec(probe),
                completions=1,
                backoff_limit=1,
            ),
        )
        job.completion_event.defuse()
        env.run()
        # Initial pod + one restart, both liveness-killed -> job fails.
        assert job.is_failed
        assert job.failed_count == 2
        assert (
            cluster.metrics.counter_sum("pod_liveness_restarts_total") == 2.0
        )
        reasons = [e.reason for e in cluster.events_for("Pod")]
        assert "LivenessFailed" in reasons

    def test_heartbeating_pod_survives(self, cluster, env):
        cluster.metrics = MetricRegistry(env)
        probe = LivenessProbe(period_s=5.0, timeout_s=12.0)
        pod = cluster.create_pod(
            "beater", beating_spec(probe, duration=60.0, beat_every=5.0)
        )
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED
        assert (
            cluster.metrics.counter_sum("pod_liveness_restarts_total") == 0.0
        )

    def test_probe_pauses_while_no_container_runs(self, cluster, env):
        # The watchdog only counts time while containers are alive, so a
        # pod that is liveness-killed and restarted by its Job gets a
        # fresh window, not an instant re-kill.
        probe = LivenessProbe(period_s=2.0, timeout_s=10.0)
        job = cluster.create_job(
            "hung2",
            JobSpec(
                template=lambda i: hung_spec(probe),
                completions=1,
                backoff_limit=2,
            ),
        )
        job.completion_event.defuse()
        env.run()
        assert job.failed_count == 3  # each attempt lived its full window


class TestNodeLeases:
    def test_partition_expires_leases_then_heals(self):
        tb = build_nautilus_testbed(seed=3, scale=0.001)
        env = tb.env
        tb.enable_node_leases(interval_s=15.0, grace_periods=3)
        faults = tb.network_faults()
        stanford = [
            name
            for name, node in tb.cluster.nodes.items()
            if node.spec.site == "Stanford"
        ]
        assert stanford  # the PRP build places nodes there

        job = tb.cluster.create_job(
            "work",
            JobSpec(
                template=lambda i: sleeper_spec(duration=400.0),
                completions=8,
                parallelism=8,
            ),
        )
        env.run(until=60.0)
        faults.partition(["Stanford"])

        # Three missed 15 s heartbeats -> NotReady via the same path as
        # a hard node failure.
        env.run(until=160.0)
        for name in stanford:
            assert not tb.cluster.get_node(name).ready
        expired = tb.registry.counter_sum("node_lease_expirations_total")
        assert expired == float(len(stanford))
        assert tb.registry.counter_sum("network_partitions_total") == 1.0

        faults.heal_partition()
        results = env.run(until=job.completion_event)
        assert job.is_complete
        assert set(results) == set(range(8))
        # Heartbeats resumed -> the lease controller auto-recovered the
        # nodes it failed.
        env.run(until=env.now + 30.0)
        for name in stanford:
            assert tb.cluster.get_node(name).ready

    def test_lease_controller_only_recovers_its_own_failures(self):
        tb = build_nautilus_testbed(seed=3, scale=0.001)
        env = tb.env
        tb.enable_node_leases(interval_s=15.0, grace_periods=3)
        victim = sorted(tb.cluster.nodes)[0]
        tb.cluster.fail_node(victim)  # hard failure, not lease expiry
        env.run(until=120.0)
        # Heartbeats are fine (no partition), but the controller must
        # not resurrect a node an operator/chaos failed directly.
        assert not tb.cluster.get_node(victim).ready
