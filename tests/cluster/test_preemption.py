"""Tests for cordon/drain and priority preemption."""

import pytest

from repro.cluster import Cluster, JobSpec, PodPhase, fiona8_node_spec, fiona_node_spec
from repro.sim import Environment
from tests.cluster.conftest import sleeper_spec


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    c = Cluster(env)
    c.add_node(fiona_node_spec("cpu-a"))
    c.add_node(fiona_node_spec("cpu-b"))
    return c


class TestCordonDrain:
    def test_cordoned_node_accepts_no_new_pods(self, cluster, env):
        cluster.cordon("cpu-a")
        cluster.cordon("cpu-b")
        pod = cluster.create_pod("p", sleeper_spec(duration=5))
        env.run(until=40)
        assert pod.phase is PodPhase.PENDING
        cluster.uncordon("cpu-a")
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.node_name == "cpu-a"

    def test_cordon_keeps_running_pods(self, cluster, env):
        pod = cluster.create_pod("p", sleeper_spec(duration=100))
        env.run(until=50)
        assert pod.phase is PodPhase.RUNNING
        cluster.cordon(pod.node_name)
        env.run(until=60)
        assert pod.phase is PodPhase.RUNNING  # untouched
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED

    def test_drain_evicts_and_controller_reschedules(self, cluster, env):
        job = cluster.create_job(
            "j", JobSpec(template=lambda i: sleeper_spec(duration=100))
        )
        env.run(until=50)
        (pod,) = job.active.values()
        drained_node = pod.node_name
        cluster.drain(drained_node)
        env.run()
        assert job.is_complete
        # The replacement ran on the other node.
        reasons = [e.reason for e in cluster.events_for("Node", drained_node)]
        assert "Cordoned" in reasons and "Draining" in reasons

    def test_drained_node_reusable_after_uncordon(self, cluster, env):
        cluster.drain("cpu-a")
        cluster.cordon("cpu-b")
        pod = cluster.create_pod("p", sleeper_spec(duration=5))
        env.run(until=30)
        assert pod.phase is PodPhase.PENDING
        cluster.uncordon("cpu-a")
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED

    def test_cordon_idempotent(self, cluster):
        cluster.cordon("cpu-a")
        cluster.cordon("cpu-a")
        cluster.uncordon("cpu-a")
        cluster.uncordon("cpu-a")


class TestPreemption:
    def test_high_priority_pod_preempts_low(self, env):
        cluster = Cluster(env)
        cluster.add_node(fiona8_node_spec("gpu-a"))
        # Fill all 8 GPUs with low-priority work.
        low = [
            cluster.create_pod(f"low-{i}", sleeper_spec(duration=1e6, gpu=4))
            for i in range(2)
        ]
        env.run(until=30)
        assert all(p.phase is PodPhase.RUNNING for p in low)
        spec = sleeper_spec(duration=10, gpu=4)
        spec.priority = 100
        urgent = cluster.create_pod("urgent", spec)
        env.run(until=100)
        assert urgent.phase is PodPhase.SUCCEEDED
        # Exactly one victim was evicted.
        preempted = [p for p in low if p.phase is PodPhase.FAILED]
        assert len(preempted) == 1
        assert any(
            e.reason == "Preempted" for e in cluster.events_for("Pod")
        )

    def test_equal_priority_never_preempts(self, env):
        cluster = Cluster(env)
        cluster.add_node(fiona8_node_spec("gpu-a"))
        low = cluster.create_pod("holder", sleeper_spec(duration=200, gpu=8))
        env.run(until=30)
        pod = cluster.create_pod("peer", sleeper_spec(duration=10, gpu=8))
        env.run(until=100)
        assert pod.phase is PodPhase.PENDING
        assert low.phase is PodPhase.RUNNING
        env.run()
        assert pod.phase is PodPhase.SUCCEEDED  # after holder finishes

    def test_preemption_chooses_fewest_victims(self, env):
        cluster = Cluster(env)
        cluster.add_node(fiona8_node_spec("many"))
        cluster.add_node(fiona8_node_spec("one"))
        # "many" holds 4 small pods; "one" holds 1 big pod.
        for i in range(4):
            cluster.create_pod(
                f"small-{i}",
                sleeper_spec(
                    duration=1e6, gpu=2,
                    node_selector={"kubernetes.io/hostname": "many"},
                ),
            )
        big = cluster.create_pod(
            "big",
            sleeper_spec(
                duration=1e6, gpu=8,
                node_selector={"kubernetes.io/hostname": "one"},
            ),
        )
        env.run(until=30)
        spec = sleeper_spec(duration=10, gpu=8)
        spec.priority = 10
        urgent = cluster.create_pod("urgent", spec)
        env.run(until=100)
        assert urgent.phase is PodPhase.SUCCEEDED
        assert big.phase is PodPhase.FAILED  # single victim beats four
        assert urgent.node_name == "one"

    def test_preemption_respects_selectors(self, env):
        """A pod that can only run on node X must not preempt on node Y."""
        cluster = Cluster(env)
        cluster.add_node(fiona8_node_spec("x"))
        cluster.add_node(fiona8_node_spec("y"))
        victim = cluster.create_pod(
            "victim",
            sleeper_spec(duration=1e6, gpu=8,
                         node_selector={"kubernetes.io/hostname": "y"}),
        )
        env.run(until=30)
        spec = sleeper_spec(duration=10, gpu=8,
                            node_selector={"kubernetes.io/hostname": "x"})
        spec.priority = 10
        pod = cluster.create_pod("wants-x", spec)
        env.run(until=100)
        # x was free: scheduled without touching the pod on y.
        assert pod.phase is PodPhase.SUCCEEDED
        assert victim.phase is PodPhase.RUNNING

    def test_zero_priority_never_triggers_preemption(self, env):
        cluster = Cluster(env)
        cluster.add_node(fiona8_node_spec("gpu-a"))
        holder = cluster.create_pod("holder", sleeper_spec(duration=200, gpu=8))
        env.run(until=30)
        default_prio = cluster.create_pod("normal", sleeper_spec(duration=5, gpu=8))
        env.run(until=60)
        assert holder.phase is PodPhase.RUNNING
        assert default_prio.phase is PodPhase.PENDING
