"""Unit tests for Kubernetes-style quantity parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Quantity, parse_cpu, parse_memory
from repro.cluster.quantity import GiB, MiB, format_cpu, format_memory
from repro.errors import InvalidQuantityError


class TestParseCpu:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("500m", 0.5),
            ("1", 1.0),
            ("1.5", 1.5),
            (2, 2.0),
            (0.25, 0.25),
            ("250m", 0.25),
            ("0", 0.0),
        ],
    )
    def test_valid(self, raw, expected):
        assert parse_cpu(raw) == expected

    @pytest.mark.parametrize("raw", ["abc", "1x", "-1", "", "m500"])
    def test_invalid(self, raw):
        with pytest.raises(InvalidQuantityError):
            parse_cpu(raw)

    def test_negative_number_rejected(self):
        with pytest.raises(InvalidQuantityError):
            parse_cpu(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_milli_roundtrip(self, millis):
        assert parse_cpu(f"{millis}m") == pytest.approx(millis / 1000)


class TestParseMemory:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("1Ki", 1024),
            ("2Mi", 2 * MiB),
            ("96Gi", 96 * GiB),
            ("1.5G", 1_500_000_000),
            ("500M", 500_000_000),
            ("1024", 1024),
            (4096, 4096),
        ],
    )
    def test_valid(self, raw, expected):
        assert parse_memory(raw) == expected

    @pytest.mark.parametrize("raw", ["96GG", "abc", "-5", "1Qi"])
    def test_invalid(self, raw):
        with pytest.raises(InvalidQuantityError):
            parse_memory(raw)

    @given(st.integers(min_value=0, max_value=1024))
    def test_gi_scaling(self, n):
        assert parse_memory(f"{n}Gi") == n * GiB


class TestFormatting:
    def test_format_cpu(self):
        assert format_cpu(0.5) == "500m"
        assert format_cpu(4.0) == "4"

    def test_format_memory(self):
        assert format_memory(96 * GiB) == "96.0Gi"
        assert format_memory(512) == "512"

    @given(st.floats(min_value=0.001, max_value=128, allow_nan=False))
    def test_cpu_format_parse_roundtrip(self, cores):
        cores = round(cores, 3)
        assert parse_cpu(format_cpu(cores)) == pytest.approx(cores, abs=1e-9)


class TestQuantity:
    def test_constructors(self):
        assert Quantity.cpu("500m").amount == 0.5
        assert Quantity.memory("1Ki").amount == 1024
        assert Quantity.count(3).amount == 3

    def test_add_same_kind(self):
        q = Quantity.cpu(1) + Quantity.cpu("500m")
        assert q.amount == 1.5

    def test_add_mixed_kind_rejected(self):
        with pytest.raises(InvalidQuantityError):
            Quantity.cpu(1) + Quantity.memory(1)

    def test_bad_kind(self):
        with pytest.raises(InvalidQuantityError):
            Quantity("disk", 1)

    def test_equality_and_hash(self):
        assert Quantity.cpu(1) == Quantity.cpu("1000m")
        assert hash(Quantity.cpu(1)) == hash(Quantity.cpu("1000m"))
        assert Quantity.cpu(1) != Quantity.count(1)
