"""Acceptance tests for the fault-domain resilience layer.

The headline guarantee: the CONNECT workflow completes under combined
node failures, a network partition, and transient transfer faults, and
its scientific outputs are identical to a fault-free run — the faults
cost time, never correctness.  A killed run finishes via checkpoint
resume without re-executing completed steps, and every fault schedule
replays exactly under a fixed seed.
"""

import pytest

from repro.chaos import ChaosMonkey
from repro.testbed import build_nautilus_testbed
from repro.transfer import TransientFaultInjector
from repro.workflow import (
    WorkflowCheckpoint,
    WorkflowDriver,
    build_connect_workflow,
)

#: Step artifacts that must not depend on fault injection.  Timing
#: artifacts (durations, rates) legitimately differ; these must not.
ROBUST_ARTIFACTS = ("files_downloaded", "voxel_f1", "n_shards", "model_object")

_OVERRIDES = {
    "download": {"worker_liveness_s": 600.0},
    "training": {"real_train_steps": 30},
    "inference": {"n_gpus": 8},
}

#: Cheap overrides for the checkpoint/resume scenario (no chaos there,
#: so the run only needs to be long enough to kill mid-flight).
_LIGHT_OVERRIDES = {
    "download": {"materialize_timesteps": 8},
    "training": {"real_train_steps": 20, "real_train_timesteps": 8},
    "inference": {"n_gpus": 8, "real_test_timesteps": 8, "real_shards": 2},
}


def _run_connect(faulty: bool, chaos_seed: int = 11):
    tf = (
        TransientFaultInjector(
            seed=5, error_rate=0.03, timeout_rate=0.0, reset_rate=0.03,
            max_faults=25,
        )
        if faulty
        else None
    )
    tb = build_nautilus_testbed(seed=4, scale=0.002, transfer_faults=tf)
    tb.enable_node_leases()
    monkey = (
        ChaosMonkey(
            tb,
            mean_interval=300.0,
            recovery_after=120.0,
            include_partitions=True,
            max_failures=4,
            seed=chaos_seed,
        )
        if faulty
        else None
    )
    wf = build_connect_workflow(overrides=_OVERRIDES)
    report = WorkflowDriver(tb).run(wf)
    return tb, report, monkey


@pytest.fixture(scope="module")
def baseline():
    return _run_connect(faulty=False)


@pytest.fixture(scope="module")
def chaotic():
    return _run_connect(faulty=True)


class TestFaultsCostTimeNotCorrectness:
    def test_connect_completes_under_combined_faults(self, baseline, chaotic):
        _, rep0, _ = baseline
        tb1, rep1, monkey = chaotic
        assert rep0.succeeded
        assert rep1.succeeded
        # Every fault family actually fired.
        assert tb1.thredds.fault_injector.total_injected > 0
        assert monkey.failures_injected > 0
        assert any(e.kind == "partition" for e in monkey.events)

    def test_outputs_identical_to_fault_free_run(self, baseline, chaotic):
        _, rep0, _ = baseline
        _, rep1, _ = chaotic
        for step in ("download", "training", "inference"):
            a0 = rep0.step(step).artifacts
            a1 = rep1.step(step).artifacts
            for key in ROBUST_ARTIFACTS:
                if key in a0:
                    assert a0[key] == a1[key], (step, key)
        # The faults were absorbed, not free: the run took longer.
        assert rep1.total_duration_s > rep0.total_duration_s

    def test_resilience_metrics_exported(self, chaotic):
        tb, _, monkey = chaotic
        counters = {
            "chaos_node_failures_total": sum(
                1 for e in monkey.events if e.kind == "node-fail"
            ),
            "network_partitions_total": sum(
                1 for e in monkey.events if e.kind == "partition"
            ),
        }
        for name, expected in counters.items():
            assert tb.registry.counter_sum(name) == float(expected)
        assert tb.registry.counter_sum("transfer_retries_total") > 0
        # The partitioned site's nodes were declared NotReady by lease
        # expiry (the monkey never calls fail_node for partitions).
        assert tb.registry.counter_sum("node_lease_expirations_total") > 0

    def test_fault_schedule_replays_exactly(self, chaotic):
        _, rep1, monkey1 = chaotic
        _, rep2, monkey2 = _run_connect(faulty=True)
        trace1 = [(e.time, e.kind, e.target, e.reason) for e in monkey1.events]
        trace2 = [(e.time, e.kind, e.target, e.reason) for e in monkey2.events]
        assert trace1 == trace2
        assert rep2.total_duration_s == rep1.total_duration_s
        assert [s.duration_s for s in rep2.steps] == [
            s.duration_s for s in rep1.steps
        ]


class TestKilledRunResumes:
    def test_resume_finishes_without_reexecuting_download(self, tmp_path):
        # Learn the fault-free step boundaries (deterministic per seed).
        tb0 = build_nautilus_testbed(seed=9, scale=0.002)
        rep0 = WorkflowDriver(tb0).run(
            build_connect_workflow(overrides=_LIGHT_OVERRIDES)
        )
        assert rep0.succeeded
        download_s = rep0.step("download").duration_s

        # Kill a fresh run shortly after the download completes.
        tb = build_nautilus_testbed(seed=9, scale=0.002)
        ckpt = WorkflowCheckpoint("connect", path=tmp_path / "connect.json")
        killed = WorkflowDriver(tb).run(
            build_connect_workflow(overrides=_LIGHT_OVERRIDES),
            checkpoint=ckpt,
            deadline_s=download_s + 60.0,
        )
        assert not killed.succeeded
        assert ckpt.completed() == {"download"}
        served_before = tb.thredds.requests_served

        # Resume on the same testbed: the archive is not contacted
        # again, the remaining steps run, the workflow succeeds.
        resumed = WorkflowDriver(tb).run(
            build_connect_workflow(overrides=_LIGHT_OVERRIDES),
            resume_from=WorkflowCheckpoint.load(tmp_path / "connect.json"),
        )
        assert resumed.succeeded
        by_name = {s.name: s for s in resumed.steps}
        assert by_name["download"].resumed
        assert not by_name["training"].resumed
        assert tb.thredds.requests_served == served_before
        # The carried-over artifacts match the uninterrupted run.
        for key in ROBUST_ARTIFACTS:
            if key in rep0.step("download").artifacts:
                assert (
                    by_name["download"].artifacts[key]
                    == rep0.step("download").artifacts[key]
                )
