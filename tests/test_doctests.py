"""Run the doctests embedded in module/function docstrings.

Keeps every ``>>>`` example in the documentation honest.
"""

import doctest

import pytest

import repro.cluster.quantity
import repro.data.netcdf
import repro.sim.rng

MODULES = [
    repro.cluster.quantity,
    repro.data.netcdf,
    repro.sim.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
