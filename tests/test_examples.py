"""Smoke tests: every example script runs to completion as a subprocess.

The examples are part of the public deliverable; these tests keep them
from rotting as the library evolves.  Each runs in its own process with
the repo's ``src`` on the path (the case study runs at a reduced scale).
"""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples"

#: script name -> extra argv
CASES = {
    "quickstart.py": [],
    "connect_case_study.py": ["0.002"],
    "self_healing_demo.py": [],
    "hyperparameter_sweep.py": [],
    "distributed_training.py": [],
    "namespace_multitenancy.py": [],
    "vr_visualization.py": [],
    "ppods_collaboration.py": [],
}


def test_every_example_has_a_case():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), "update CASES when adding examples"


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *CASES[script]],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=str(REPO),
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip()  # every example narrates its run
