"""Tests for JupyterHub: CILogon auth, spawning, activity culling."""

import pytest

from repro.cluster.pod import PodPhase
from repro.errors import ClusterError
from repro.jupyter import CILogonAuthenticator, JupyterHub
from repro.testbed import build_nautilus_testbed


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=8, scale=0.0001)


@pytest.fixture
def hub(testbed):
    return JupyterHub(testbed, idle_timeout=600.0, cull_interval=60.0)


class TestCILogon:
    def test_federated_identity_accepted(self):
        auth = CILogonAuthenticator()
        assert auth.authenticate("grad@ucsd.edu") == "grad@ucsd.edu"
        assert "grad@ucsd.edu" in auth.claimed

    def test_unfederated_provider_rejected(self):
        auth = CILogonAuthenticator()
        with pytest.raises(PermissionError):
            auth.authenticate("user@evil.example")

    def test_non_identity_rejected(self):
        with pytest.raises(PermissionError):
            CILogonAuthenticator().authenticate("not-an-email")

    def test_custom_providers(self):
        auth = CILogonAuthenticator(providers={"lab.example"})
        auth.authenticate("x@lab.example")
        with pytest.raises(PermissionError):
            auth.authenticate("x@ucsd.edu")


class TestSpawning:
    def test_spawn_attaches_gpu(self, testbed, hub):
        server = hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=60)
        assert server.ready
        assert len(server.gpus) == 1  # "attached to a GPU on the cluster"
        assert hub.gpus_in_use() == 1

    def test_spawn_is_idempotent_per_user(self, testbed, hub):
        a = hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=60)
        b = hub.spawn("grad@ucsd.edu")
        assert a is b
        assert len(hub.active_users()) == 1

    def test_cephfs_mounted(self, testbed, hub):
        server = hub.spawn("grad@ucsd.edu")
        assert server.pod.spec.volumes["cephfs"] is testbed.cephfs

    def test_multiple_users_distinct_gpus(self, testbed, hub):
        s1 = hub.spawn("a@ucsd.edu")
        s2 = hub.spawn("b@uci.edu")
        testbed.env.run(until=60)
        assert set(s1.gpus).isdisjoint(s2.gpus)
        assert hub.active_users() == ["a@ucsd.edu", "b@uci.edu"]

    def test_unauthenticated_spawn_rejected(self, hub):
        with pytest.raises(PermissionError):
            hub.spawn("anon@unknown.tld")

    def test_stop_releases_gpu(self, testbed, hub):
        hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=60)
        assert hub.gpus_in_use() == 1
        hub.stop("grad@ucsd.edu")
        testbed.env.run(until=120)
        assert hub.gpus_in_use() == 0
        assert hub.active_users() == []


class TestCulling:
    def test_idle_server_culled(self, testbed, hub):
        hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=1000)  # idle_timeout=600
        assert "grad@ucsd.edu" in hub.culled
        assert hub.active_users() == []

    def test_activity_defers_culling(self, testbed, hub):
        hub.spawn("grad@ucsd.edu")

        def keep_alive(env):
            while env.now < 1500:
                yield env.timeout(300)
                hub.touch("grad@ucsd.edu")

        testbed.env.process(keep_alive(testbed.env))
        testbed.env.run(until=1400)
        assert hub.active_users() == ["grad@ucsd.edu"]
        # Once activity stops, the culler reclaims the GPU.
        testbed.env.run(until=3000)
        assert hub.active_users() == []

    def test_touch_unknown_user_rejected(self, hub):
        with pytest.raises(ClusterError):
            hub.touch("ghost@ucsd.edu")

    def test_respawn_after_cull(self, testbed, hub):
        hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=1000)
        assert hub.active_users() == []
        server = hub.spawn("grad@ucsd.edu")
        testbed.env.run(until=1100)
        assert server.pod.phase is PodPhase.RUNNING
