"""Tests for link failure and routing convergence on the PRP."""

import pytest

from repro.errors import NetworkError, NoRouteError
from repro.netsim import FlowSimulator, Topology, build_prp_topology
from repro.sim import Environment


@pytest.fixture
def ring():
    """A 4-site ring: two disjoint paths between any pair."""
    t = Topology()
    for name in "ABCD":
        t.add_site(name)
    t.add_link("A", "B", 10.0, latency_s=0.001)
    t.add_link("B", "C", 10.0, latency_s=0.001)
    t.add_link("C", "D", 10.0, latency_s=0.001)
    t.add_link("D", "A", 10.0, latency_s=0.001)
    return t


class TestFailRestore:
    def test_reroute_around_failed_link(self, ring):
        direct = ring.route("A", "B")
        assert len(direct) == 1
        ring.fail_link("A", "B")
        detour = ring.route("A", "B")
        assert len(detour) == 3  # A-D-C-B
        assert all(link.up for link in detour)

    def test_restore_returns_shortest_path(self, ring):
        ring.fail_link("A", "B")
        ring.restore_link("A", "B")
        assert len(ring.route("A", "B")) == 1

    def test_partition_raises_no_route(self, ring):
        ring.fail_link("A", "B")
        ring.fail_link("D", "A")
        with pytest.raises(NoRouteError):
            ring.route("A", "C")

    def test_unknown_link_rejected(self, ring):
        with pytest.raises(NetworkError):
            ring.fail_link("A", "C")

    def test_fail_restore_idempotent(self, ring):
        ring.fail_link("A", "B")
        ring.fail_link("A", "B")
        ring.restore_link("A", "B")
        ring.restore_link("A", "B")
        assert len(ring.route("A", "B")) == 1

    def test_transfer_over_detour_completes(self, ring):
        env = Environment()
        ring.attach_host("ha", "A")
        ring.attach_host("hb", "B")
        ring.fail_link("A", "B")
        sim = FlowSimulator(env)
        done = sim.transfer(
            ring.path_resources("ha", "hb"),
            1e9,
            latency_s=ring.path_latency("ha", "hb"),
        )
        env.run(until=done)
        assert sim.completed_count == 1

    def test_prp_core_ring_survives_single_cut(self):
        """The CENIC core ring keeps every center pair connected after
        any single core-link failure."""
        topo = build_prp_topology()
        topo.fail_link("UCSD", "SDSC")
        assert topo.route("UCSD", "SDSC")  # the long way around the ring
        topo.restore_link("UCSD", "SDSC")

    def test_detour_latency_is_higher(self, ring):
        direct = ring.path_latency("A", "B")
        ring.fail_link("A", "B")
        assert ring.path_latency("A", "B") > direct
