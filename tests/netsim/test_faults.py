"""Tests for the network fault injector: degrades, partitions, stragglers."""

import pytest

from repro.errors import NetworkError
from repro.monitoring import MetricRegistry
from repro.netsim import (
    FlowSimulator,
    NetworkFaultInjector,
    Topology,
    build_prp_topology,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def line(env):
    """A-B-C line with hosts on A and C; one path, easy arithmetic."""
    t = Topology()
    for name in "ABC":
        t.add_site(name)
    t.add_link("A", "B", 10.0, latency_s=0.0)
    t.add_link("B", "C", 10.0, latency_s=0.0)
    t.attach_host("ha", "A", nic_gbps=10.0)
    t.attach_host("hc", "C", nic_gbps=10.0)
    return t


def _gbps_to_Bps(gbps):
    return gbps * 1e9 / 8.0


class TestDegrade:
    def test_mid_flow_degrade_slows_transfer(self, env, line):
        sim = FlowSimulator(env)
        inj = NetworkFaultInjector(line, flowsim=sim, env=env)
        nbytes = _gbps_to_Bps(10.0) * 10.0  # 10 s at full rate
        done = sim.transfer(
            line.path_resources("ha", "hc"), nbytes, name="xfer"
        )
        inj.schedule(5.0, inj.degrade_link, "A", "B", 0.5)
        env.run(until=done)
        # 5 s at full rate + remaining half at half rate = 5 + 10 = 15 s.
        assert env.now == pytest.approx(15.0)

    def test_degrades_compose_against_original(self, env, line):
        inj = NetworkFaultInjector(line, env=env)
        link = line.get_link("A", "B")
        original = link.gbps
        inj.degrade_link("A", "B", 0.5)
        inj.degrade_link("A", "B", 0.1)  # relative to original, not 0.5x
        assert link.gbps == pytest.approx(original * 0.1)
        inj.restore_link("A", "B")
        assert link.gbps == pytest.approx(original)

    def test_bad_factor_rejected(self, env, line):
        inj = NetworkFaultInjector(line)
        with pytest.raises(NetworkError):
            inj.degrade_link("A", "B", 0.0)
        with pytest.raises(NetworkError):
            inj.degrade_link("A", "B", 1.5)


class TestHardCuts:
    def test_fail_stalls_and_heal_resumes(self, env, line):
        sim = FlowSimulator(env)
        inj = NetworkFaultInjector(line, flowsim=sim, env=env)
        nbytes = _gbps_to_Bps(10.0) * 10.0
        done = sim.transfer(
            line.path_resources("ha", "hc"), nbytes, name="xfer"
        )
        inj.schedule(4.0, inj.fail_link, "A", "B")
        inj.schedule(9.0, inj.heal_link, "A", "B")
        env.run(until=done)
        # 4 s transferred + 5 s stalled + 6 s remaining = 15 s.
        assert env.now == pytest.approx(15.0)

    def test_flap_link_cycles(self, env, line):
        inj = NetworkFaultInjector(line, env=env)
        link = line.get_link("A", "B")
        inj.flap_link("A", "B", down_s=2.0, up_s=1.0, cycles=3)
        env.run(until=1.0)
        assert not link.up
        env.run()
        assert link.up  # ends healed


class TestPartitions:
    def test_partition_isolates_site_group(self, env):
        topo = build_prp_topology()
        inj = NetworkFaultInjector(topo, env=env)
        cut = inj.partition(["UCI"])
        assert cut  # something was actually severed
        assert not topo.reachable("UCI", "UCSD")
        assert inj.active_partitions == 1
        inj.heal_partition()
        assert topo.reachable("UCI", "UCSD")
        assert inj.active_partitions == 0

    def test_partition_unknown_site_rejected(self, env, line):
        inj = NetworkFaultInjector(line, env=env)
        with pytest.raises(NetworkError):
            inj.partition(["Atlantis"])

    def test_stacked_partitions_heal_lifo(self, env):
        topo = build_prp_topology()
        inj = NetworkFaultInjector(topo, env=env)
        inj.partition(["UCI"])
        inj.partition(["Stanford"])
        inj.heal_partition()  # Stanford first
        assert topo.reachable("Stanford", "UCSD")
        assert not topo.reachable("UCI", "UCSD")
        inj.heal_partition()
        assert topo.reachable("UCI", "UCSD")

    def test_hosts_follow_their_site(self, env, line):
        inj = NetworkFaultInjector(line, env=env)
        inj.partition(["C"])
        assert not line.reachable("ha", "hc")
        # The host access link itself is untouched; only the WAN is cut.
        assert line.get_link("hc", "C").up
        inj.heal_partition()
        assert line.reachable("ha", "hc")


class TestStragglers:
    def test_straggler_throttles_and_restores(self, env, line):
        inj = NetworkFaultInjector(line, env=env)
        access = line.get_link("hc", "C")
        rating = access.gbps
        inj.make_straggler("hc", 0.1)
        assert access.gbps == pytest.approx(rating * 0.1)
        inj.restore_straggler("hc")
        assert access.gbps == pytest.approx(rating)
        assert inj.active_summary()["stragglers"] == []


class TestMetrics:
    def test_fault_counters_exported(self, env, line):
        registry = MetricRegistry(env)
        inj = NetworkFaultInjector(line, env=env, registry=registry)
        inj.degrade_link("A", "B", 0.5)
        inj.restore_link("A", "B")
        inj.fail_link("A", "B")
        inj.heal_link("A", "B")
        inj.partition(["C"])
        inj.heal_partition()
        assert registry.counter_sum("link_degradations_total") == 1.0
        assert registry.counter_sum("link_failures_total") == 1.0
        assert registry.counter_sum("network_partitions_total") == 1.0


class TestScheduling:
    def test_schedule_requires_env(self, line):
        inj = NetworkFaultInjector(line)
        with pytest.raises(NetworkError):
            inj.schedule(1.0, inj.fail_link, "A", "B")
