"""Unit tests for the max-min fair fluid-flow engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.netsim.flows import CapacityResource, Flow, FlowSimulator, max_min_rates
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def sim(env):
    return FlowSimulator(env)


def run_transfer(env, sim, resources, nbytes, **kw):
    """Run a single transfer to completion; return finish time."""
    done = sim.transfer(resources, nbytes, **kw)
    env.run(until=done)
    return env.now


class TestMaxMinRates:
    def _flow(self, resources, nbytes=1e9):
        return Flow("f", resources, nbytes, event=None, start_time=0.0)

    def test_single_flow_gets_full_capacity(self):
        link = CapacityResource("l", 100.0)
        f = self._flow([link])
        assert max_min_rates([f])[f] == pytest.approx(100.0)

    def test_equal_split_on_shared_link(self):
        link = CapacityResource("l", 90.0)
        flows = [self._flow([link]) for _ in range(3)]
        rates = max_min_rates(flows)
        assert all(rates[f] == pytest.approx(30.0) for f in flows)

    def test_bottleneck_is_tightest_hop(self):
        wide = CapacityResource("wide", 1000.0)
        narrow = CapacityResource("narrow", 10.0)
        f = self._flow([wide, narrow])
        assert max_min_rates([f])[f] == pytest.approx(10.0)

    def test_unbottlenecked_flow_takes_leftover(self):
        """Classic max-min example: two flows share link A (cap 10); one of
        them also crosses link B (cap 4).  Fair rates: 4 and 6."""
        a = CapacityResource("a", 10.0)
        b = CapacityResource("b", 4.0)
        constrained = self._flow([a, b])
        free = self._flow([a])
        rates = max_min_rates([constrained, free])
        assert rates[constrained] == pytest.approx(4.0)
        assert rates[free] == pytest.approx(6.0)

    def test_resourceless_flow_is_unconstrained(self):
        f = self._flow([])
        assert max_min_rates([f])[f] == float("inf")

    @settings(max_examples=50, deadline=None)
    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=4),
        n_flows=st.integers(min_value=1, max_value=6),
    )
    def test_property_no_resource_oversubscribed(self, caps, n_flows):
        resources = [CapacityResource(f"r{i}", c) for i, c in enumerate(caps)]
        flows = [
            self._flow(resources[i % len(resources) :]) for i in range(n_flows)
        ]
        rates = max_min_rates(flows)
        for res in resources:
            total = sum(rates[f] for f in flows if res in f.resources)
            assert total <= res.capacity * (1 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        cap=st.floats(min_value=1.0, max_value=1e6),
        n=st.integers(min_value=1, max_value=10),
    )
    def test_property_single_link_work_conserving(self, cap, n):
        link = CapacityResource("l", cap)
        flows = [self._flow([link]) for _ in range(n)]
        rates = max_min_rates(flows)
        assert sum(rates.values()) == pytest.approx(cap)


class TestFlowSimulator:
    def test_single_transfer_duration(self, env, sim):
        link = CapacityResource("l", 100.0)  # 100 B/s
        t = run_transfer(env, sim, [link], 1000.0)
        assert t == pytest.approx(10.0)

    def test_zero_bytes_completes_after_latency(self, env, sim):
        t = run_transfer(env, sim, [], 0.0, latency_s=0.5)
        assert t == pytest.approx(0.5)

    def test_latency_added_to_completion(self, env, sim):
        link = CapacityResource("l", 100.0)
        t = run_transfer(env, sim, [link], 1000.0, latency_s=2.0)
        assert t == pytest.approx(12.0)

    def test_negative_bytes_rejected(self, sim):
        with pytest.raises(NetworkError):
            sim.transfer([], -1)

    def test_two_equal_flows_halve_throughput(self, env, sim):
        link = CapacityResource("l", 100.0)
        d1 = sim.transfer([link], 1000.0)
        d2 = sim.transfer([link], 1000.0)
        env.run(until=env.all_of([d1, d2]))
        # Each gets 50 B/s: both finish at t=20.
        assert env.now == pytest.approx(20.0)

    def test_rate_reconverges_when_flow_finishes(self, env, sim):
        """Short flow leaves; long flow speeds up: 500B + 1500B on a
        100 B/s link -> short done at 10s, long done at 20s."""
        link = CapacityResource("l", 100.0)
        short = sim.transfer([link], 500.0)
        long = sim.transfer([link], 1500.0)
        env.run(until=short)
        assert env.now == pytest.approx(10.0)
        env.run(until=long)
        assert env.now == pytest.approx(20.0)

    def test_late_joiner_shares_fairly(self, env, sim):
        """Flow A alone for 5s (500B done), then B joins and they split."""
        link = CapacityResource("l", 100.0)
        a = sim.transfer([link], 1000.0, name="a")

        def joiner(env):
            yield env.timeout(5.0)
            b = sim.transfer([link], 250.0, name="b")
            yield b
            return env.now

        p = env.process(joiner(env))
        b_done = env.run(until=p)
        assert b_done == pytest.approx(10.0)  # 250B at 50 B/s after t=5
        env.run(until=a)
        # A: 500B by t=5, 250B more by t=10 (shared), then full rate.
        assert env.now == pytest.approx(12.5)

    def test_allocated_rate_visible_to_monitoring(self, env, sim):
        link = CapacityResource("l", 100.0)
        sim.transfer([link], 10_000.0)
        env.run(until=1.0)
        assert sim.sample_rates([link])["l"] == pytest.approx(100.0)
        assert link.utilization == pytest.approx(1.0)

    def test_counters(self, env, sim):
        link = CapacityResource("l", 100.0)
        sim.transfer([link], 100.0)
        sim.transfer([link], 100.0)
        env.run(until=100)
        assert sim.completed_count == 2
        assert sim.bytes_moved == pytest.approx(200.0)

    def test_many_parallel_flows_complete(self, env, sim):
        link = CapacityResource("l", 1000.0)
        events = [sim.transfer([link], 100.0 * (i + 1)) for i in range(20)]
        env.run(until=env.all_of(events))
        assert sim.completed_count == 20
        assert sim.active_flows == 0
