"""Unit tests for PRP topology construction and routing."""

import pytest

from repro.errors import NetworkError, NoRouteError
from repro.netsim import FlowSimulator, Topology, build_prp_topology
from repro.netsim.topology import gbps_to_Bps
from repro.sim import Environment


@pytest.fixture
def small_topo():
    t = Topology()
    t.add_site("A")
    t.add_site("B")
    t.add_site("C")
    t.add_link("A", "B", 100.0, latency_s=0.01)
    t.add_link("B", "C", 10.0, latency_s=0.01)
    t.attach_host("host-a", "A", nic_gbps=10.0)
    t.attach_host("host-c", "C", nic_gbps=40.0)
    return t


class TestConstruction:
    def test_duplicate_site_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.add_site("A")

    def test_duplicate_link_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.add_link("B", "A", 10.0)

    def test_link_to_unknown_site_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.add_link("A", "Z", 10.0)

    def test_host_attach_to_unknown_site_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.attach_host("h", "Z")

    def test_duplicate_host_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.attach_host("host-a", "B")

    def test_nonpositive_capacity_rejected(self, small_topo):
        with pytest.raises(NetworkError):
            small_topo.add_link("A", "C", 0.0)


class TestRouting:
    def test_route_crosses_expected_hops(self, small_topo):
        route = small_topo.route("host-a", "host-c")
        names = [link.resource.name for link in route]
        assert len(route) == 4  # NIC, A-B, B-C, NIC
        assert "link:host-a<->A" in names[0]

    def test_route_to_self_is_empty(self, small_topo):
        assert small_topo.route("host-a", "host-a") == []

    def test_no_route_raises(self, small_topo):
        small_topo.add_site("island")
        with pytest.raises(NoRouteError):
            small_topo.route("host-a", "island")

    def test_bottleneck_detection(self, small_topo):
        # host-a NIC=10, A-B=100, B-C=10, host-c NIC=40 -> bottleneck 10.
        assert small_topo.bottleneck_gbps("host-a", "host-c") == 10.0

    def test_path_latency_accumulates(self, small_topo):
        lat = small_topo.path_latency("host-a", "host-c")
        assert lat == pytest.approx(0.01 + 0.01 + 0.0001 + 0.0001)

    def test_site_of(self, small_topo):
        assert small_topo.site_of("host-a") == "A"
        with pytest.raises(NetworkError):
            small_topo.site_of("ghost")


class TestPRPTopology:
    def test_matches_paper_scale(self):
        """§II: 'more than 20 institutions, including four NSF/DOE/NASA
        supercomputer centers' on '10G, 40G and 100G networks'."""
        topo = build_prp_topology()
        summary = topo.summary()
        assert summary["sites"] >= 20
        assert summary["core_sites"] >= 4
        assert summary["link_speeds_gbps"] == [10.0, 40.0, 100.0]

    def test_all_sites_reachable(self):
        topo = build_prp_topology()
        sites = list(topo.sites)
        for dst in sites[1:]:
            assert topo.route(sites[0], dst)

    def test_core_ring_is_100g(self):
        topo = build_prp_topology()
        route = topo.route("UCSD", "SDSC")
        assert all(link.gbps == 100.0 for link in route)

    def test_end_to_end_transfer_over_prp(self):
        """A 1 GB transfer UCSD->UCI lands in ~0.8s at 10G NIC line rate."""
        env = Environment()
        topo = build_prp_topology()
        topo.attach_host("dtn-ucsd", "UCSD", nic_gbps=10.0)
        topo.attach_host("dtn-uci", "UCI", nic_gbps=10.0)
        sim = FlowSimulator(env)
        done = sim.transfer(
            topo.path_resources("dtn-ucsd", "dtn-uci"),
            1e9,
            latency_s=topo.path_latency("dtn-ucsd", "dtn-uci"),
        )
        env.run(until=done)
        expected = 1e9 / gbps_to_Bps(10.0)
        assert env.now == pytest.approx(expected, rel=0.05)
