"""Tests for the figure/table renderers."""

import pytest

from repro.testbed import build_nautilus_testbed
from repro.viz import (
    bar_chart,
    figure3_stats,
    figure4_stats,
    figure5_stats,
    figure6_stats,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    text_table,
)
from repro.workflow import WorkflowDriver, build_connect_workflow


@pytest.fixture(scope="module")
def executed():
    # Fine-grained sampling so the short small-scale download job is
    # actually caught by the scrape loop (Figure 4 peaks).
    testbed = build_nautilus_testbed(seed=11, scale=0.005, sampler_interval=1.0)
    workflow = build_connect_workflow(testbed, real_ml=False)
    report = WorkflowDriver(testbed).run(workflow)
    assert report.succeeded
    return testbed, workflow, report


class TestPrimitives:
    def test_text_table_alignment(self):
        out = text_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_bar_chart(self):
        out = bar_chart([("x", 10.0), ("y", 5.0)], width=10, unit="s")
        assert "█" * 10 in out
        assert "█" * 5 in out

    def test_bar_chart_empty(self):
        assert bar_chart([], title="none") == "none"


class TestFigures:
    def test_figure1_inventory(self, executed):
        testbed, _, _ = executed
        out = render_figure1(testbed)
        assert "PRP partner sites" in out
        assert "Storage capacity (PB)" in out

    def test_figure2_lists_steps(self, executed):
        _, workflow, _ = executed
        out = render_figure2(workflow)
        for name in ("download", "training", "inference", "visualization"):
            assert name in out

    def test_figure3_stats_and_render(self, executed):
        testbed, _, report = executed
        stats = figure3_stats(testbed, report)
        assert stats["workers"] >= 10
        assert stats["pods"] == 14
        out = render_figure3(testbed, report)
        assert "Redis queue" in out

    def test_figure4_peaks_positive(self, executed):
        testbed, _, report = executed
        stats = figure4_stats(testbed, report)
        assert stats["wan_egress_peak_MBps"] > 0
        out = render_figure4(testbed, report)
        assert "IOPS" in out

    def test_figure5_phases_sum_to_total(self, executed):
        testbed, _, report = executed
        stats = figure5_stats(testbed, report)
        assert stats["prep_minutes"] > 0
        assert stats["train_minutes"] > stats["prep_minutes"]
        assert (
            stats["prep_minutes"] + stats["train_minutes"]
            <= stats["total_minutes"] + 1e-6
        )
        assert "Figure 5" in render_figure5(testbed, report)

    def test_figure6_gpu_peak(self, executed):
        testbed, _, report = executed
        stats = figure6_stats(testbed, report)
        assert stats["gpus"] == 50
        assert stats["peak_gpus_in_use"] >= 40  # sampled at 15s intervals
        assert "GPUs in use" in render_figure6(testbed, report)

    def test_table1_layout(self, executed):
        _, _, report = executed
        out = render_table1(report)
        assert "Table I" in out
        assert "# of Pods" in out
        assert "NA" in out  # visualization time
