"""Tests for the command-line interface."""

import pytest

from repro._version import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 0.005
        assert args.gpus == 50
        assert not args.no_real_ml

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == __version__

    def test_inventory(self, capsys):
        assert main(["inventory", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "PRP partner sites" in out

    def test_describe(self, capsys):
        assert main(["describe", "--gpus", "8"]) == 0
        out = capsys.readouterr().out
        assert "download" in out and "visualization" in out

    def test_run_small(self, capsys):
        code = main(
            ["run", "--scale", "0.0005", "--no-real-ml", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "# of GPUs" in out

    def test_run_with_figures(self, capsys):
        code = main(
            ["run", "--scale", "0.0005", "--no-real-ml", "--figures"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for figure in ("Figure 3", "Figure 4", "Figure 5", "Figure 6"):
            assert figure in out

    def test_run_custom_shape(self, capsys):
        code = main([
            "run", "--scale", "0.0005", "--no-real-ml",
            "--workers", "4", "--gpus", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "| 10" in out  # 10 GPUs in the table
