"""Tests for transient-fault injection and the transfer retry machinery."""

import pytest

from repro.data.catalog import MerraArchive
from repro.errors import TransferError, TransientServerError
from repro.netsim import FlowSimulator, Topology
from repro.sim import Environment
from repro.transfer import (
    Aria2Downloader,
    RetryPolicy,
    ThreddsServer,
    TransientFaultInjector,
    retry_call,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net():
    t = Topology()
    t.add_site("UCSD")
    t.add_site("UCI")
    t.add_link("UCSD", "UCI", 10.0, latency_s=0.0)
    t.attach_host("server", "UCSD", nic_gbps=1.0)
    t.attach_host("worker", "UCI", nic_gbps=10.0)
    return t


def _downloader(env, net, injector=None, policy=None, **kw):
    # The injector goes on the downloader (stream faults) only, so the
    # catalog resolution done in test setup stays fault-free.
    archive = MerraArchive(n_files=60, seed=0)
    server = ThreddsServer(archive, host="server")
    sim = FlowSimulator(env)
    return server, Aria2Downloader(
        env,
        sim,
        net,
        server,
        host="worker",
        connections=4,
        retry_policy=policy,
        fault_injector=injector,
        **kw,
    )


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            inj = TransientFaultInjector(
                seed=seed, error_rate=0.1, timeout_rate=0.1, reset_rate=0.1
            )
            return [inj.draw() for _ in range(200)]

        assert schedule(3) == schedule(3)
        assert schedule(3) != schedule(4)

    def test_max_faults_bounds_injection(self):
        inj = TransientFaultInjector(seed=1, error_rate=1.0, max_faults=5)
        for _ in range(50):
            inj.draw()
        assert inj.total_injected == 5

    def test_until_s_disarms_after_deadline(self, env):
        inj = TransientFaultInjector(
            seed=1, error_rate=1.0, until_s=10.0, env=env
        )
        assert inj.draw() is not None
        env.run(until=11.0)
        assert inj.draw() is None


class TestRetryCall:
    def test_retries_transient_then_succeeds(self, env):
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise TransientServerError("503")
            return "ok"

        def body():
            result = yield from retry_call(
                env, flaky, RetryPolicy(max_attempts=5, jitter="none")
            )
            return result

        proc = env.process(body())
        assert env.run(until=proc) == "ok"
        assert calls[0] == 3
        assert env.now > 0  # backoff sleeps happened on the sim clock

    def test_permanent_error_not_retried(self, env):
        calls = [0]

        def broken():
            calls[0] += 1
            raise TransferError("bad request")

        def body():
            yield from retry_call(env, broken, RetryPolicy(max_attempts=5))

        proc = env.process(body())
        with pytest.raises(TransferError):
            env.run(until=proc)
        assert calls[0] == 1

    def test_exhaustion_reraises(self, env):
        def always():
            raise TransientServerError("503")

        def body():
            yield from retry_call(
                env, always, RetryPolicy(max_attempts=3, jitter="none")
            )

        proc = env.process(body())
        with pytest.raises(TransientServerError):
            env.run(until=proc)


class TestAria2UnderFaults:
    def _run_batch(self, seed=7, deadline_s=None, n=40):
        env = Environment()
        net = Topology()
        net.add_site("UCSD")
        net.add_site("UCI")
        net.add_link("UCSD", "UCI", 10.0, latency_s=0.0)
        net.attach_host("server", "UCSD", nic_gbps=1.0)
        net.attach_host("worker", "UCI", nic_gbps=10.0)
        inj = TransientFaultInjector(
            seed=seed, error_rate=0.05, timeout_rate=0.02, reset_rate=0.05,
            stall_s=2.0,
        )
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=2.0,
            deadline_s=deadline_s,
        )
        server, dl = _downloader(env, net, injector=inj, policy=policy)
        requests = server.resolve_many(range(n), ("U", "V", "QV"))

        def body():
            stats = yield from dl.download_batch(requests)
            return stats

        proc = env.process(body())
        stats = env.run(until=proc)
        return env, inj, dl, stats

    def test_batch_completes_despite_faults(self):
        env, inj, dl, stats = self._run_batch()
        assert stats.files == 40
        assert inj.total_injected > 0  # faults actually fired
        assert dl.retries_total >= inj.total_injected - dl.failures_total
        assert dl.failures_total == 0

    def test_fault_schedule_deterministic(self):
        runs = [self._run_batch(seed=7) for _ in range(2)]
        (e1, i1, d1, s1), (e2, i2, d2, s2) = runs
        assert i1.injected == i2.injected
        assert d1.retries_total == d2.retries_total
        assert e1.now == e2.now
        assert s1.bytes == s2.bytes

    def test_metrics_exported(self):
        env = Environment()
        from repro.monitoring import MetricRegistry

        registry = MetricRegistry(env)
        net = Topology()
        net.add_site("UCSD")
        net.add_site("UCI")
        net.add_link("UCSD", "UCI", 10.0, latency_s=0.0)
        net.attach_host("server", "UCSD", nic_gbps=1.0)
        net.attach_host("worker", "UCI", nic_gbps=10.0)
        inj = TransientFaultInjector(seed=3, error_rate=0.3, max_faults=10)
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1, max_delay_s=1.0)
        server, dl = _downloader(
            env, net, injector=inj, policy=policy, metrics=registry
        )
        requests = server.resolve_many(range(30), ("U", "V", "QV"))

        def body():
            yield from dl.download_batch(requests)

        proc = env.process(body())
        env.run(until=proc)
        assert registry.counter_sum("transfer_retries_total") == dl.retries_total
        assert dl.retries_total > 0


class TestPerRequestDeadline:
    def test_deadline_aborts_slow_transfer(self, env, net):
        # 0.001 Gbps access: the 60-file batch can't finish in 1 s.
        slow = Topology()
        slow.add_site("UCSD")
        slow.add_site("UCI")
        slow.add_link("UCSD", "UCI", 10.0, latency_s=0.0)
        slow.attach_host("server", "UCSD", nic_gbps=0.001)
        slow.attach_host("worker", "UCI", nic_gbps=10.0)
        policy = RetryPolicy(
            max_attempts=1, deadline_s=1.0, jitter="none"
        )
        server, dl = _downloader(env, slow, policy=policy)
        request = server.resolve(0, ("U", "V", "QV"))

        def body():
            yield from dl.download_batch([request])

        proc = env.process(body())
        with pytest.raises(TransferError):
            env.run(until=proc)
        assert env.now == pytest.approx(1.0)
        # The aborted flow was cancelled, not leaked.
        env.run()
        assert dl.flowsim.active_flows == 0


class TestOnProgress:
    def test_progress_callback_fires_per_file(self, env, net):
        beats = [0]
        server, dl = _downloader(
            env, net, on_progress=lambda: beats.__setitem__(0, beats[0] + 1)
        )
        requests = server.resolve_many(range(5), ("U", "V", "QV"))

        def body():
            yield from dl.download_batch(requests)

        proc = env.process(body())
        env.run(until=proc)
        assert beats[0] >= 5
