"""Tests for THREDDS subsetting, the Aria2 downloader, and merging."""

import pytest

from repro.data import MerraArchive
from repro.data.netcdf import NetCDFFile
from repro.errors import TransferError
from repro.netsim import FlowSimulator, Topology
from repro.sim import Environment
from repro.transfer import (
    Aria2Downloader,
    MergePlanner,
    ThreddsServer,
    merge_cpu_seconds,
    merged_hdf_size,
)


@pytest.fixture
def archive():
    return MerraArchive(n_files=100, seed=1)


@pytest.fixture
def server(archive):
    return ThreddsServer(archive, host="its-dtn-02")


class TestThredds:
    def test_full_file_request(self, server, archive):
        req = server.resolve(5)
        assert req.nbytes == archive.granule(5).full_bytes
        assert req.variables is None
        assert "its-dtn-02" in req.url

    def test_subset_request_is_smaller(self, server, archive):
        """§III-A: subsetting cuts the transfer roughly in half."""
        full = server.resolve(5)
        sub = server.resolve(5, variables=("U", "V", "QV"))
        assert sub.nbytes == pytest.approx(archive.granule(5).subset_bytes)
        assert sub.nbytes / full.nbytes == pytest.approx(246 / 455, rel=1e-6)

    def test_single_variable_scales_down(self, server):
        one = server.resolve(0, variables=("QV",))
        three = server.resolve(0, variables=("U", "V", "QV"))
        assert one.nbytes == pytest.approx(three.nbytes / 3)

    def test_unknown_variable_rejected(self, server):
        with pytest.raises(TransferError):
            server.resolve(0, variables=("GHOST",))

    def test_catalog_paging(self, server):
        page = server.catalog_page(90, 20)
        assert len(page) == 10  # truncated at the archive end
        assert page[0].index == 90

    def test_stats_accumulate(self, server):
        server.resolve(0)
        server.resolve(1, variables=("U",))
        assert server.requests_served == 2
        assert server.bytes_served > 0


class TestAria2:
    @pytest.fixture
    def world(self, server):
        env = Environment()
        topo = Topology()
        topo.add_site("UCSD")
        topo.attach_host("its-dtn-02", "UCSD", nic_gbps=10.0)
        topo.attach_host("worker-0", "UCSD", nic_gbps=10.0)
        flows = FlowSimulator(env)
        return env, topo, flows

    def test_batch_downloads_everything(self, world, server):
        env, topo, flows = world
        dl = Aria2Downloader(env, flows, topo, server, host="worker-0",
                             connections=20)
        reqs = server.resolve_many(range(10), variables=("U", "V", "QV"))
        proc = env.process(dl.download_batch(reqs))
        stats = env.run(until=proc)
        assert stats.files == 10
        assert stats.bytes == pytest.approx(sum(r.nbytes for r in reqs))
        assert stats.duration > 0

    def test_connection_limit_serializes(self, world, server):
        """1 connection must be ~N times slower than N connections is NOT
        true on a shared link — but overheads serialize, so 1-conn pays
        N x request_overhead while 20-conn pays ~ceil(N/20) x."""
        env, topo, flows = world
        reqs = server.resolve_many(range(10))
        slow = Aria2Downloader(env, flows, topo, server, "worker-0",
                               connections=1)
        proc = env.process(slow.download_batch(reqs))
        t_serial = env.run(until=proc)
        env2 = Environment()
        topo2 = Topology()
        topo2.add_site("UCSD")
        topo2.attach_host("its-dtn-02", "UCSD", nic_gbps=10.0)
        topo2.attach_host("worker-0", "UCSD", nic_gbps=10.0)
        flows2 = FlowSimulator(env2)
        fast = Aria2Downloader(env2, flows2, topo2, server, "worker-0",
                               connections=20)
        proc2 = env2.process(fast.download_batch(reqs))
        env2.run(until=proc2)
        assert env2.now < env.now

    def test_zero_requests_is_fine(self, world, server):
        env, topo, flows = world
        dl = Aria2Downloader(env, flows, topo, server, "worker-0")
        proc = env.process(dl.download_batch([]))
        stats = env.run(until=proc)
        assert stats.files == 0

    def test_bad_connection_count(self, world, server):
        env, topo, flows = world
        with pytest.raises(ValueError):
            Aria2Downloader(env, flows, topo, server, "worker-0", connections=0)


class TestMerge:
    def test_merged_size_saves_headers(self):
        sizes = [1e6, 1e6, 1e6]
        merged = merged_hdf_size(sizes)
        assert merged == pytest.approx(3e6 - 2 * NetCDFFile.HEADER_BYTES)

    def test_empty_merge(self):
        assert merged_hdf_size([]) == 0.0

    def test_cpu_time_scales_with_files_and_bytes(self):
        few_big = merge_cpu_seconds([1e9])
        many_small = merge_cpu_seconds([1e9 / 1000] * 1000)
        assert many_small > few_big  # per-file overhead dominates

    def test_planner_partitions_all_indices(self):
        planner = MergePlanner(files_per_merge=240)
        indices = list(range(1000))
        sizes = {i: 2e6 for i in indices}
        plans = planner.plan(indices, sizes, worker="w0")
        assert len(plans) == 5  # ceil(1000/240)
        covered = [i for p in plans for i in p.granule_indices]
        assert sorted(covered) == indices
        assert all(p.output_bytes < p.input_bytes for p in plans)

    def test_planner_validates(self):
        with pytest.raises(ValueError):
            MergePlanner(files_per_merge=0)
