"""Tests for THREDDS content serving (real granule arrays)."""

import numpy as np
import pytest

from repro.data import MerraArchive
from repro.data.merra import GridSpec, MerraGenerator
from repro.errors import TransferError
from repro.transfer import ThreddsServer


@pytest.fixture
def server():
    grid = GridSpec(nlat=20, nlon=30, nlev=4)
    return ThreddsServer(
        MerraArchive(n_files=50, seed=1),
        generator=MerraGenerator(grid, seed=1),
    )


class TestContentService:
    def test_full_granule_has_all_variables(self, server):
        granule = server.open_granule(3)
        for var in ("U", "V", "QV", "T", "PS"):
            assert var in granule
        assert granule.variables["U"].data is not None

    def test_subset_drops_decoy_variables(self, server):
        subset = server.open_granule(3, variables=("U", "V", "QV"))
        assert sorted(subset.variables) == ["QV", "U", "V"]

    def test_subset_content_matches_full(self, server):
        full = server.open_granule(5)
        subset = server.open_granule(5, variables=("QV",))
        np.testing.assert_array_equal(
            subset.variables["QV"].data, full.variables["QV"].data
        )

    def test_granule_name_matches_catalog(self, server):
        granule = server.open_granule(7)
        assert granule.name == server.archive.granule(7).name

    def test_unknown_variable_rejected(self, server):
        with pytest.raises(TransferError):
            server.open_granule(0, variables=("GHOST",))

    def test_bad_index_rejected(self, server):
        with pytest.raises(IndexError):
            server.open_granule(999)

    def test_catalog_only_server_refuses(self):
        server = ThreddsServer(MerraArchive(n_files=5))
        with pytest.raises(TransferError):
            server.open_granule(0)

    def test_bytes_served_tracks_content(self, server):
        before = server.bytes_served
        granule = server.open_granule(0)
        assert server.bytes_served - before == granule.nbytes

    def test_temporal_index_is_content_seed(self, server):
        """Different granules carry different (time-evolved) fields."""
        a = server.open_granule(0).variables["QV"].data
        b = server.open_granule(40).variables["QV"].data
        assert not np.array_equal(a, b)
