"""Tests for the Redis-like reliable queue."""

import pytest

from repro.errors import QueueEmptyError, TransferError
from repro.sim import Environment
from repro.transfer import RedisQueue


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def queue(env):
    return RedisQueue(env)


class TestBasicOps:
    def test_push_try_pop_fifo(self, queue):
        queue.push_all(["a", "b", "c"])
        assert queue.try_pop("w").body == "a"
        assert queue.try_pop("w").body == "b"
        assert len(queue) == 1

    def test_try_pop_empty_raises(self, queue):
        with pytest.raises(QueueEmptyError):
            queue.try_pop("w")

    def test_blocking_pop_waits_for_push(self, env, queue):
        got = []

        def consumer(env):
            msg = yield queue.pop("w")
            got.append((env.now, msg.body))

        def producer(env):
            yield env.timeout(5)
            queue.push("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5, "late")]

    def test_kv_store(self, queue):
        queue.set("done:file1", True)
        assert queue.get("done:file1") is True
        assert queue.get("missing", "dflt") == "dflt"


class TestReliability:
    def test_pop_moves_to_processing(self, queue):
        queue.push("x")
        msg = queue.try_pop("w1")
        assert queue.in_flight == 1
        assert msg in queue.processing["w1"]

    def test_ack_clears_processing(self, queue):
        queue.push("x")
        msg = queue.try_pop("w1")
        queue.ack("w1", msg)
        assert queue.in_flight == 0
        assert queue.acked_total == 1
        assert queue.drained

    def test_ack_unheld_message_rejected(self, queue):
        queue.push("x")
        msg = queue.try_pop("w1")
        with pytest.raises(TransferError):
            queue.ack("w2", msg)

    def test_recover_requeues_crashed_workers_messages(self, queue):
        queue.push_all(["a", "b"])
        queue.try_pop("w1")
        queue.try_pop("w1")
        assert len(queue) == 0
        n = queue.recover("w1")
        assert n == 2
        assert len(queue) == 2
        assert queue.requeued_total == 2

    def test_recovered_message_tracks_attempts(self, queue):
        queue.push("x")
        first = queue.try_pop("w1")
        assert first.attempts == 1
        queue.recover("w1")
        again = queue.try_pop("w2")
        assert again.attempts == 2
        assert again.id == first.id

    def test_recover_unknown_consumer_is_noop(self, queue):
        assert queue.recover("ghost") == 0

    def test_drained_requires_empty_and_no_inflight(self, queue):
        assert queue.drained
        queue.push("x")
        assert not queue.drained
        msg = queue.try_pop("w")
        assert not queue.drained
        queue.ack("w", msg)
        assert queue.drained


class TestConcurrentConsumers:
    def test_work_distributes_across_workers(self, env, queue):
        queue.push_all(range(10))
        seen = {f"w{i}": [] for i in range(3)}

        def worker(env, name):
            while True:
                try:
                    msg = queue.try_pop(name)
                except QueueEmptyError:
                    return
                yield env.timeout(1)  # simulate work
                queue.ack(name, msg)
                seen[name].append(msg.body)

        for name in seen:
            env.process(worker(env, name))
        env.run()
        assert sorted(sum(seen.values(), [])) == list(range(10))
        assert queue.drained
        # All three workers got some share.
        assert all(len(v) >= 3 for v in seen.values())
