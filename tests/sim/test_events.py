"""Unit tests for the event primitives of the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_pending_initially(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self, env):
        ev = env.event()
        ev.succeed(123)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 123

    def test_double_trigger_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_on_step(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("v")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["v"]
        assert ev.processed

    def test_failed_event_without_defuse_crashes_run(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_does_not_crash(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        env.run()  # no raise
        assert not ev.ok


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(10, value="done")
        env.run()
        assert env.now == 10
        assert t.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_fires_at_now(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_fifo_ordering_at_same_time(self, env):
        order = []
        for i in range(5):
            t = env.timeout(3)
            t.callbacks.append(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestConditions:
    def test_all_of_collects_all_values(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(2, "b")
        cond = AllOf(env, [t1, t2])
        env.run(cond)
        assert env.now == 2
        assert set(cond.value.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(5, "slow"), env.timeout(1, "fast")
        cond = AnyOf(env, [t1, t2])
        value = env.run(cond)
        assert env.now == 1
        assert list(value.values()) == ["fast"]

    def test_empty_all_of_trivially_succeeds(self, env):
        cond = AllOf(env, [])
        env.run()
        assert cond.ok
        assert cond.value == {}

    def test_all_of_fails_if_member_fails(self, env):
        good = env.timeout(5)
        bad = env.event()
        cond = AllOf(env, [good, bad])
        cond.defuse()
        bad.fail(ValueError("nope"))
        env.run()
        assert not cond.ok
        assert isinstance(cond.value, ValueError)

    def test_cross_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [other.timeout(1)])

    def test_and_operator(self, env):
        cond = env.timeout(3) & env.timeout(5)
        env.run(until=cond)
        assert env.now == 5

    def test_or_operator(self, env):
        cond = env.timeout(3) | env.timeout(5)
        env.run(until=cond)
        assert env.now == 3

    def test_chained_operators(self, env):
        cond = (env.timeout(9) & env.timeout(2)) | env.timeout(4)
        env.run(until=cond)
        assert env.now == 4


class TestEnvironmentRun:
    def test_run_until_time_stops_clock_there(self, env):
        env.timeout(100)
        env.run(until=40)
        assert env.now == 40

    def test_run_until_past_raises(self, env):
        env.timeout(5)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_run_until_event_returns_value(self, env):
        t = env.timeout(3, value=99)
        assert env.run(until=t) == 99

    def test_run_until_unfired_event_raises(self, env):
        ev = env.event()  # never triggered
        env.timeout(1)
        with pytest.raises(SimulationError, match="ran out of events"):
            env.run(until=ev)

    def test_step_with_empty_heap_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7
