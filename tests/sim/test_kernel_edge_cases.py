"""Edge-case and stress tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestInterruptEdgeCases:
    def test_interrupt_process_waiting_on_condition(self, env):
        """Interrupting a process parked on all_of must not crash the run
        when the stragglers later fire."""

        def victim(env):
            try:
                yield env.all_of([env.timeout(50), env.timeout(60)])
            except ProcessKilled:
                return "killed"
            return "finished"

        def killer(env, v):
            yield env.timeout(5)
            v.interrupt()

        v = env.process(victim(env))
        env.process(killer(env, v))
        assert env.run(until=v) == "killed"
        env.run()  # the abandoned timeouts fire harmlessly

    def test_interrupt_process_holding_resource_slot(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                try:
                    yield env.timeout(100)
                except ProcessKilled:
                    order.append("released")
            # context manager releases on exit

        def waiter(env):
            with res.request() as req:
                yield req
                order.append("acquired")

        h = env.process(holder(env))
        env.process(waiter(env))

        def killer(env):
            yield env.timeout(10)
            h.interrupt()

        env.process(killer(env))
        env.run()
        assert order == ["released", "acquired"]

    def test_double_interrupt_same_time(self, env):
        hits = []

        def victim(env):
            for _ in range(2):
                try:
                    yield env.timeout(100)
                except ProcessKilled as exc:
                    hits.append(exc.cause)
            return hits

        def killer(env, v):
            yield env.timeout(1)
            v.interrupt(cause="first")
            v.interrupt(cause="second")

        v = env.process(victim(env))
        env.process(killer(env, v))
        assert env.run(until=v) == ["first", "second"]


class TestConditionEdgeCases:
    def test_any_of_with_one_already_processed(self, env):
        t = env.timeout(1, value="early")
        env.run(until=5)

        def waiter(env):
            result = yield env.any_of([t, env.timeout(100)])
            return list(result.values())

        p = env.process(waiter(env))
        assert env.run(until=p) == ["early"]

    def test_nested_conditions(self, env):
        def proc(env):
            inner = env.all_of([env.timeout(3), env.timeout(4)])
            outer = yield env.any_of([inner, env.timeout(10)])
            return env.now

        p = env.process(proc(env))
        assert env.run(until=p) == 4

    def test_all_of_many_events(self, env):
        cond = env.all_of([env.timeout(i) for i in range(100)])
        env.run(until=cond)
        assert env.now == 99


class TestStoreEdgeCases:
    def test_interrupted_getter_does_not_steal_items(self, env):
        store = Store(env)
        got = []

        def getter(env, name):
            try:
                item = yield store.get()
                got.append((name, item))
            except ProcessKilled:
                pass

        g1 = env.process(getter(env, "g1"))
        env.process(getter(env, "g2"))

        def driver(env):
            yield env.timeout(1)
            g1.interrupt()
            yield env.timeout(1)
            yield store.put("only")

        env.process(driver(env))
        env.run()
        assert got == [("g2", "only")]

    def test_many_producers_consumers(self, env):
        store = Store(env, capacity=5)
        consumed = []

        def producer(env, base):
            for i in range(10):
                yield store.put(base + i)
                yield env.timeout(0.1)

        def consumer(env):
            for _ in range(20):
                item = yield store.get()
                consumed.append(item)
                yield env.timeout(0.15)

        env.process(producer(env, 0))
        env.process(producer(env, 100))
        env.process(consumer(env))
        env.run()
        assert len(consumed) == 20
        assert set(consumed) == set(range(10)) | set(range(100, 110))


class TestDeterminismStress:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_complex_program_is_reproducible(self, seed):
        import numpy as np

        def run():
            env = Environment()
            res = Resource(env, capacity=3)
            store = Store(env)
            trace = []
            rng = np.random.default_rng(seed)
            delays = rng.uniform(0.1, 5.0, size=20)

            def worker(env, k):
                with res.request() as req:
                    yield req
                    yield env.timeout(float(delays[k]))
                    yield store.put(k)
                    trace.append((round(env.now, 6), k))

            for k in range(20):
                env.process(worker(env, k))
            env.run()
            return trace

        assert run() == run()

    def test_time_never_goes_backwards(self, env):
        stamps = []

        def ticker(env, period):
            for _ in range(50):
                yield env.timeout(period)
                stamps.append(env.now)

        for period in (0.7, 1.3, 2.9):
            env.process(ticker(env, period))
        env.run()
        assert stamps == sorted(stamps)

    def test_run_until_event_from_other_env_rejected(self, env):
        other = Environment()
        t = other.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=t)
