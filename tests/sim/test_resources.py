"""Unit tests for Resource / Container / Store primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_mutual_exclusion(self, env):
        res = Resource(env, capacity=1)
        trace = []

        def user(env, name):
            with res.request() as req:
                yield req
                trace.append((env.now, name, "in"))
                yield env.timeout(10)
                trace.append((env.now, name, "out"))

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert trace == [
            (0, "a", "in"),
            (10, "a", "out"),
            (10, "b", "in"),
            (20, "b", "out"),
        ]

    def test_parallel_slots(self, env):
        res = Resource(env, capacity=3)
        done = []

        def user(env, k):
            with res.request() as req:
                yield req
                yield env.timeout(5)
                done.append((env.now, k))

        for k in range(6):
            env.process(user(env, k))
        env.run()
        # Two waves of three.
        assert [t for t, _ in done] == [5, 5, 5, 10, 10, 10]

    def test_count_and_queue_len(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1)
        assert res.count == 1
        assert res.queue_len == 1

    def test_priority_grants_lowest_first(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(env, name, prio):
            yield env.timeout(1)  # arrive while holder owns the slot
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, "low", 5))
        env.process(user(env, "high", 0))
        env.run()
        assert order == ["high", "low"]

    def test_request_over_capacity_rejected(self, env):
        res = Resource(env, capacity=2)
        with pytest.raises(SimulationError):
            res.request(amount=3)

    def test_multi_slot_request(self, env):
        res = Resource(env, capacity=4)
        trace = []

        def big(env):
            with res.request(amount=3) as req:
                yield req
                trace.append(("big", env.now))
                yield env.timeout(5)

        def small(env):
            yield env.timeout(1)
            with res.request(amount=2) as req:
                yield req
                trace.append(("small", env.now))

        env.process(big(env))
        env.process(small(env))
        env.run()
        assert trace == [("big", 0), ("small", 5)]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        env.process(holder(env))
        env.run(until=1)
        req = res.request()
        assert res.queue_len == 1
        req.cancel()
        assert res.queue_len == 0


class TestContainer:
    def test_init_level(self, env):
        c = Container(env, capacity=100, init=40)
        assert c.level == 40

    def test_get_blocks_until_put(self, env):
        c = Container(env, capacity=100)
        trace = []

        def consumer(env):
            yield c.get(30)
            trace.append(env.now)

        def producer(env):
            yield env.timeout(5)
            yield c.put(30)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert trace == [5]
        assert c.level == 0

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=10, init=10)
        trace = []

        def producer(env):
            yield c.put(5)
            trace.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield c.get(5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert trace == [3]
        assert c.level == 10

    def test_impossible_get_rejected(self, env):
        c = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            c.get(11)

    def test_negative_amounts_rejected(self, env):
        c = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            c.put(-1)
        with pytest.raises(SimulationError):
            c.get(-1)


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for item in "abc":
                yield store.put(item)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_on_empty(self, env):
        store = Store(env)
        trace = []

        def consumer(env):
            item = yield store.get()
            trace.append((env.now, item))

        def producer(env):
            yield env.timeout(8)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert trace == [(8, "x")]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        trace = []

        def producer(env):
            yield store.put(1)
            yield store.put(2)  # blocks until consumer frees a slot
            trace.append(env.now)

        def consumer(env):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert trace == [4]

    def test_len(self, env):
        store = Store(env)

        def producer(env):
            yield store.put("a")
            yield store.put("b")

        env.process(producer(env))
        env.run()
        assert len(store) == 2
