"""Unit tests for coroutine processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_simple_timeline(self, env):
        trace = []

        def proc(env):
            trace.append(env.now)
            yield env.timeout(5)
            trace.append(env.now)
            yield env.timeout(2.5)
            trace.append(env.now)

        env.process(proc(env))
        env.run()
        assert trace == [0, 5, 7.5]

    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"

    def test_process_is_alive_until_done(self, env):
        def proc(env):
            yield env.timeout(10)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        p.defuse()
        env.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_crash_propagates_to_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("crash")

        env.process(proc(env))
        with pytest.raises(ValueError, match="crash"):
            env.run()

    def test_watched_crash_does_not_crash_run(self, env):
        def bad(env):
            yield env.timeout(1)
            raise ValueError("crash")

        def watcher(env, p):
            try:
                yield p
            except ValueError:
                return "caught"

        p = env.process(bad(env))
        w = env.process(watcher(env, p))
        assert env.run(until=w) == "caught"


class TestProcessComposition:
    def test_wait_for_other_process(self, env):
        def child(env):
            yield env.timeout(4)
            return 10

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        p = env.process(parent(env))
        assert env.run(until=p) == 20
        assert env.now == 4

    def test_wait_for_already_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return "early"

        def parent(env, c):
            yield env.timeout(10)
            value = yield c  # already processed
            return value

        c = env.process(child(env))
        p = env.process(parent(env, c))
        assert env.run(until=p) == "early"
        assert env.now == 10

    def test_fan_out_fan_in(self, env):
        def worker(env, k):
            yield env.timeout(k)
            return k

        def coordinator(env):
            procs = [env.process(worker(env, k)) for k in (3, 1, 2)]
            results = yield env.all_of(procs)
            return sorted(results.values())

        p = env.process(coordinator(env))
        assert env.run(until=p) == [1, 2, 3]
        assert env.now == 3


class TestInterrupt:
    def test_interrupt_delivers_processkilled(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except ProcessKilled as exc:
                return ("killed", exc.cause)

        def killer(env, v):
            yield env.timeout(5)
            v.interrupt(cause="preempted")

        v = env.process(victim(env))
        env.process(killer(env, v))
        result = env.run(until=v)
        assert result == ("killed", "preempted")
        assert env.now == 5

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def killer(env, v):
            yield env.timeout(5)
            v.interrupt()

        v = env.process(victim(env))
        v.defuse()
        env.process(killer(env, v))
        env.run()
        assert not v.ok
        assert isinstance(v.value, ProcessKilled)

    def test_original_target_firing_later_does_not_resume(self, env):
        """After an interrupt, the old awaited event must not re-enter the
        process when it eventually fires."""
        resumed = []

        def victim(env):
            try:
                yield env.timeout(10)
            except ProcessKilled:
                pass
            yield env.timeout(100)  # now waiting on something else
            resumed.append(env.now)

        def killer(env, v):
            yield env.timeout(5)
            v.interrupt()

        v = env.process(victim(env))
        env.process(killer(env, v))
        env.run()
        assert resumed == [105]

    def test_interrupt_then_continue_working(self, env):
        def victim(env):
            total = 0
            try:
                yield env.timeout(50)
                total += 50
            except ProcessKilled:
                total += env.now
            yield env.timeout(3)
            return total + 1000

        def killer(env, v):
            yield env.timeout(7)
            v.interrupt()

        v = env.process(victim(env))
        env.process(killer(env, v))
        assert env.run(until=v) == 1007
        assert env.now == 10


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def make_trace():
            env = Environment()
            trace = []

            def proc(env, name, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    trace.append((env.now, name))

            for i, d in enumerate([2, 3, 2, 5]):
                env.process(proc(env, f"p{i}", d))
            env.run()
            return trace

        assert make_trace() == make_trace()
