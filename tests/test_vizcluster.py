"""Tests for the CalVR distributed-visualization scenario (§VII)."""

import pytest

from repro.errors import ClusterError
from repro.testbed import build_nautilus_testbed
from repro.vizcluster import UNNOTICEABLE_LATENCY_S, VisualizationCluster
from repro.workflow import Workflow, WorkflowDriver
from tests.workflow.test_workflow_core import SleepStep


@pytest.fixture
def testbed():
    # 12 GPU nodes so 11 render nodes leave room for cohabitation.
    return build_nautilus_testbed(seed=6, scale=0.0001, n_fiona8=12)


@pytest.fixture
def calvr(testbed):
    # The paper drives displays at UC Merced from the SunCAVE at UCSD.
    testbed.topology.attach_host("suncave-ucsd", "UCSD", nic_gbps=10.0)
    testbed.topology.attach_host("display-ucm", "UCM", nic_gbps=10.0)
    return VisualizationCluster(testbed, input_host="suncave-ucsd")


class TestDeployment:
    def test_eleven_node_deployment(self, testbed, calvr):
        """§VII: 'a scalable OpenGL-based visualization application
        across 11 remote GPU nodes'."""
        nodes = testbed.gpu_nodes[:11]
        calvr.deploy(nodes)
        testbed.env.run(until=60)
        assert calvr.ready_renderers() == 11
        placement = calvr.renderer_placement()
        assert set(placement) == set(nodes)
        assert all(count == 1 for count in placement.values())

    def test_rejects_gpu_less_nodes(self, testbed, calvr):
        cpu_nodes = [
            n.spec.name
            for n in testbed.cluster.ready_nodes()
            if n.spec.gpus == 0
        ]
        with pytest.raises(ClusterError):
            calvr.deploy(cpu_nodes[:1])

    def test_teardown_releases_gpus(self, testbed, calvr):
        calvr.deploy(testbed.gpu_nodes[:4])
        testbed.env.run(until=60)
        calvr.teardown()
        testbed.env.run(until=90)
        assert calvr.renderer_placement() == {}

    def test_cohabitation_with_compute(self, testbed, calvr):
        """§VII: 'graphics and machine learning processes can cohabitate'
        — ML pods run on the very nodes rendering VR content."""
        nodes = testbed.gpu_nodes[:4]
        calvr.deploy(nodes)
        testbed.env.run(until=60)

        class GpuStep(SleepStep):
            def execute(self, ctx):
                from repro.cluster import JobSpec
                from tests.cluster.conftest import sleeper_spec

                job = ctx.testbed.cluster.create_job(
                    "cohab",
                    JobSpec(
                        template=lambda i: sleeper_spec(
                            duration=30, gpu=4,
                            node_selector={
                                "kubernetes.io/hostname": nodes[0]
                            },
                        ),
                        completions=1,
                    ),
                    namespace=ctx.namespace,
                )
                yield job.completion_event

        report = WorkflowDriver(testbed).run(
            Workflow("cohab", [GpuStep(name="ml")])
        )
        assert report.succeeded
        # The renderer kept running throughout.
        assert calvr.renderer_placement()[nodes[0]] == 1


class TestInteraction:
    def test_wand_round_trip_unnoticeable(self, testbed, calvr):
        """§VII: wand input from San Diego drives Merced displays 'with
        unnoticeable latency'."""
        events = [calvr.send_wand_event("display-ucm") for _ in range(20)]
        testbed.env.run(until=testbed.env.all_of(events))
        report = calvr.interaction_report()
        assert report["events"] == 20
        assert report["unnoticeable_fraction"] == 1.0
        assert report["max_rtt_ms"] < UNNOTICEABLE_LATENCY_S * 1e3

    def test_rtt_reflects_topology(self, testbed, calvr):
        """RTT must be at least twice the one-way PRP latency."""
        one_way = testbed.topology.path_latency("suncave-ucsd", "display-ucm")
        done = calvr.send_wand_event("display-ucm")
        event = testbed.env.run(until=done)
        assert event.rtt_s >= 2 * one_way

    def test_empty_report(self, calvr):
        report = calvr.interaction_report()
        assert report["events"] == 0
