"""DAG pack (DAG001–DAG007) over views, fixtures, and live workflows."""

from __future__ import annotations

import json
import pathlib

from repro.analysis import (
    Severity,
    StepView,
    WorkflowView,
    lint_workflow,
    registry,
    workflow_view,
    workflow_views_from_dict,
)
from repro.analysis.graph import concurrent_pairs, find_cycle, format_cycle
from repro.analysis.workflow_rules import STRUCTURAL_DAG_CODES, run_dag_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def codes_of(findings):
    return {f.code for f in findings}


def view_of(*steps: StepView, total_gpus=None, name="w") -> WorkflowView:
    return WorkflowView(name=name, steps=tuple(steps), total_gpus=total_gpus)


# ------------------------------------------------------------------ graph


def test_find_cycle_deterministic_and_normalized():
    deps = {"a": ("c",), "b": ("a",), "c": ("b",)}
    for _ in range(5):
        assert find_cycle(deps) == ["a", "c", "b"]
    assert format_cycle(["a", "c", "b"]) == "a -> c -> b -> a"


def test_find_cycle_none_on_dag():
    assert find_cycle({"a": (), "b": ("a",), "c": ("a", "b")}) is None


def test_find_cycle_ignores_unknown_deps():
    assert find_cycle({"a": ("ghost",)}) is None


def test_concurrent_pairs_diamond():
    deps = {"a": (), "b": ("a",), "c": ("a",), "d": ("b", "c")}
    pairs = concurrent_pairs(deps)
    assert frozenset(("b", "c")) in pairs
    assert frozenset(("a", "b")) not in pairs
    assert frozenset(("a", "d")) not in pairs


# ---------------------------------------------------------------- DAG001


def test_dag001_cycle_with_path():
    findings = run_dag_rules(
        view_of(
            StepView("a", depends_on=("c",)),
            StepView("b", depends_on=("a",)),
            StepView("c", depends_on=("b",)),
        )
    )
    assert codes_of(findings) == {"DAG001"}
    (f,) = findings
    assert f.severity is Severity.ERROR
    assert f.message == "dependency cycle: a -> c -> b -> a"


def test_dag001_does_not_double_report_self_dependency():
    findings = run_dag_rules(view_of(StepView("a", depends_on=("a",))))
    assert codes_of(findings) == {"DAG002"}


# ---------------------------------------------------------------- DAG002/3


def test_dag002_self_dependency():
    (f,) = run_dag_rules(view_of(StepView("a", depends_on=("a",))))
    assert f.code == "DAG002"
    assert "depends on itself" in f.message


def test_dag003_unknown_dependency():
    findings = run_dag_rules(
        view_of(StepView("a", depends_on=("ghost",)))
    )
    assert codes_of(findings) == {"DAG003"}
    assert "unknown step 'ghost'" in findings[0].message


# ---------------------------------------------------------------- DAG004


def test_dag004_orphan_in_wired_workflow():
    findings = run_dag_rules(
        view_of(
            StepView("a"),
            StepView("b", depends_on=("a",)),
            StepView("stray"),
        )
    )
    assert codes_of(findings) == {"DAG004"}
    assert "'stray'" in findings[0].message


def test_dag004_all_parallel_batch_is_fine():
    findings = run_dag_rules(view_of(StepView("a"), StepView("b")))
    assert "DAG004" not in codes_of(findings)


# ---------------------------------------------------------------- DAG005


def test_dag005_network_step_without_budget():
    findings = run_dag_rules(
        view_of(StepView("fetch", network_bound=True))
    )
    assert codes_of(findings) == {"DAG005"}


def test_dag005_satisfied_by_timeout_or_retries():
    assert "DAG005" not in codes_of(
        run_dag_rules(view_of(StepView("f", network_bound=True, timeout_s=60.0)))
    )
    assert "DAG005" not in codes_of(
        run_dag_rules(view_of(StepView("f", network_bound=True, max_retries=2)))
    )


# ---------------------------------------------------------------- DAG006


def test_dag006_checkpoint_gap():
    findings = run_dag_rules(
        view_of(
            StepView("volatile", checkpointable=False),
            StepView("after", depends_on=("volatile",)),
        )
    )
    assert "DAG006" in codes_of(findings)
    (f,) = [f for f in findings if f.code == "DAG006"]
    assert "'volatile'" in f.message and "after" in f.message


def test_dag006_leaf_step_needs_no_checkpoint():
    findings = run_dag_rules(
        view_of(
            StepView("a"),
            StepView("sink", depends_on=("a",), checkpointable=False),
        )
    )
    assert "DAG006" not in codes_of(findings)


# ---------------------------------------------------------------- DAG007


def test_dag007_concurrent_branches_oversubscribe():
    findings = run_dag_rules(
        view_of(
            StepView("a"),
            StepView("b", depends_on=("a",), gpus=40),
            StepView("c", depends_on=("a",), gpus=40),
            StepView("d", depends_on=("b", "c")),
            total_gpus=64,
        )
    )
    dag007 = [f for f in findings if f.code == "DAG007"]
    assert dag007 and dag007[0].severity is Severity.ERROR
    assert "80 GPUs" in dag007[0].message
    assert "64" in dag007[0].message


def test_dag007_serialized_chain_is_fine():
    findings = run_dag_rules(
        view_of(
            StepView("b", gpus=40),
            StepView("c", depends_on=("b",), gpus=40),
            total_gpus=64,
        )
    )
    assert "DAG007" not in codes_of(findings)


def test_dag007_single_step_over_capacity():
    findings = run_dag_rules(
        view_of(StepView("big", gpus=100), total_gpus=64)
    )
    dag007 = [f for f in findings if f.code == "DAG007"]
    assert dag007 and "100" in dag007[0].message


def test_dag007_skipped_without_capacity_info():
    findings = run_dag_rules(
        view_of(StepView("big", gpus=100), total_gpus=None)
    )
    assert "DAG007" not in codes_of(findings)


# -------------------------------------------------------------- adapters


def test_workflow_view_adapter_over_connect():
    from repro.workflow import build_connect_workflow

    wf = build_connect_workflow()
    view = workflow_view(wf, total_gpus=64)
    by_name = {s.name: s for s in view.steps}
    assert by_name["download"].network_bound  # image hint + class attr
    assert by_name["download"].max_retries == 1
    assert by_name["training"].gpus == 1
    assert by_name["inference"].gpus == 50
    assert by_name["visualization"].gpus == 1
    # The shipped workflow lints clean against the default testbed.
    assert lint_workflow(wf, total_gpus=64) == []


def test_cyclic_fixture_produces_dag001():
    data = json.loads((FIXTURES / "cyclic_workflow.json").read_text())
    (view,) = workflow_views_from_dict(data, source="cyclic_workflow.json")
    findings = run_dag_rules(view)
    assert codes_of(findings) == {"DAG001"}
    assert "->" in findings[0].message


def test_good_fixture_is_clean():
    data = json.loads((FIXTURES / "good_deploy.json").read_text())
    (view,) = workflow_views_from_dict(data, source="good_deploy.json")
    assert run_dag_rules(view) == []


def test_structural_codes_subset_of_pack():
    pack = set(registry.codes(pack="dag"))
    assert set(STRUCTURAL_DAG_CODES) <= pack
    assert registry.codes(pack="dag") == [f"DAG00{i}" for i in range(1, 8)]
