"""Call graph construction: module naming, edges, entries, reachability."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis.callgraph import (
    build_call_graph,
    is_test_module,
    module_name_for,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
CORPUS = FIXTURES / "deep_corpus"
REPO = pathlib.Path(__file__).resolve().parents[2]

ENTRIES = ["driver", "scheduler_conc"]


def corpus_graph():
    return build_call_graph([CORPUS], entry_modules=ENTRIES)


# ---------------------------------------------------------- module naming


def test_module_name_for_package_chain():
    path = REPO / "src" / "repro" / "gateway" / "gateway.py"
    assert module_name_for(path) == "repro.gateway.gateway"


def test_module_name_for_loose_file():
    assert module_name_for(CORPUS / "driver.py") == "driver"


def test_is_test_module():
    assert is_test_module("tests.analysis.test_foo", "tests/analysis/test_foo.py")
    assert is_test_module("pkg.conftest", "pkg/conftest.py")
    assert is_test_module("driver", str(CORPUS / "driver.py"))  # tests/ path part
    assert not is_test_module("repro.gateway.gateway", "src/repro/gateway/gateway.py")
    assert not is_test_module("contest", "src/contest.py")  # no substring match


# ------------------------------------------------------------ construction


def test_corpus_graph_entries_are_all_entry_module_functions():
    graph = corpus_graph()
    assert "driver.run" in graph.entries
    assert "driver.helper_not_reached" in graph.entries
    assert "scheduler_conc.QueueManager.drain" in graph.entries
    # Non-entry modules contribute no entries of their own.
    assert not any(q.startswith("clock.") for q in graph.entries)


def test_cross_module_edges_resolve():
    graph = corpus_graph()
    assert "clock.stamp" in graph.edges.get("driver.run", set())
    assert "rngpool.draw" in graph.edges.get("driver.run", set())
    # Two hops: draw -> _jitter inside the same module.
    assert "rngpool._jitter" in graph.edges.get("rngpool.draw", set())


def test_sim_reachable_closure_and_dead_code():
    graph = corpus_graph()
    assert "rngpool._jitter" in graph.sim_reachable  # two hops from entry
    assert "envcfg.limit" in graph.sim_reachable
    assert "rngpool.make_gen_unreached" not in graph.sim_reachable
    assert "envcfg.dead_code_draw" not in graph.sim_reachable


def test_callbacks_are_references_passed_to_calls():
    graph = corpus_graph()
    # hooks.append(mgr._on_done) registers _on_done by reference.
    assert "scheduler_conc.QueueManager._on_done" in graph.callbacks()


def test_call_path_is_deterministic_and_formats():
    graph = corpus_graph()
    path = graph.call_path("rngpool._jitter")
    assert path == ["driver.run", "rngpool.draw", "rngpool._jitter"]
    text = graph.format_path(path)
    assert "driver.run -> rngpool.draw -> rngpool._jitter" == text
    # Repeated builds give the same answer (no hash-order leakage).
    again = corpus_graph().call_path("rngpool._jitter")
    assert again == path


def test_entry_detection_by_module_marker(tmp_path):
    # Outside tests/, a module with a marker fragment ("driver") in its
    # name is auto-detected as an entry module.
    mod = tmp_path / "my_driver.py"
    mod.write_text(
        textwrap.dedent(
            """
            def go():
                return helper()


            def helper():
                return 1
            """
        )
    )
    graph = build_call_graph([tmp_path])
    assert "my_driver.go" in graph.entries
    assert "my_driver.helper" in graph.sim_reachable


def test_instance_attribute_types_resolve_method_calls(tmp_path):
    mod = tmp_path / "app_driver.py"
    mod.write_text(
        textwrap.dedent(
            """
            class Worker:
                def work(self):
                    return 1


            class App:
                def __init__(self):
                    self.worker = Worker()

                def run(self):
                    return self.worker.work()
            """
        )
    )
    graph = build_call_graph([tmp_path])
    assert "app_driver.Worker.work" in graph.edges.get("app_driver.App.run", set())


def test_repo_graph_reaches_gateway_and_driver():
    graph = build_call_graph([REPO / "src" / "repro"])
    assert "repro.workflow.driver.WorkflowDriver.run" in graph.entries
    assert "repro.gateway.gateway.AdmissionGateway.submit" in graph.sim_reachable
    assert "repro.gateway.gateway.AdmissionGateway._on_phase_change" in graph.callbacks()
