"""Findings model, fingerprints, baseline suppression, engine plumbing."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Baseline,
    ClusterSpecView,
    Finding,
    LintEngine,
    Location,
    NodeView,
    PodView,
    Severity,
    registry,
)
from repro.analysis.findings import sort_findings


def finding(code="SPEC001", line=3, message="boom", path="a.json") -> Finding:
    return Finding(
        code=code,
        severity=Severity.ERROR,
        message=message,
        location=Location(path=path, line=line),
        suggestion="fix it",
    )


# ----------------------------------------------------------- finding model


def test_severity_ordering():
    # rank is a sort key: errors present first
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


def test_finding_format_and_dict_roundtrip():
    f = finding()
    text = f.format()
    assert "SPEC001" in text and "boom" in text and "fix it" in text
    d = f.to_dict()
    assert d["code"] == "SPEC001"
    assert d["severity"] == "error"
    json.dumps(d)  # serializable


def test_sort_findings_severity_then_location():
    warn = Finding(
        code="SPEC002",
        severity=Severity.WARNING,
        message="later",
        location=Location(path="a.json", line=1),
    )
    err = finding(line=9)
    assert sort_findings([warn, err])[0] is err


# ------------------------------------------------------------ fingerprints


def test_fingerprint_stable_across_line_moves():
    assert finding(line=3).fingerprint == finding(line=300).fingerprint


def test_fingerprint_changes_with_code_message_and_path():
    base = finding()
    assert base.fingerprint != finding(code="SPEC005").fingerprint
    assert base.fingerprint != finding(message="other").fingerprint
    assert base.fingerprint != finding(path="b.json").fingerprint


# ---------------------------------------------------------------- baseline


def test_baseline_split_and_contains():
    accepted, fresh = finding(), finding(message="new problem")
    baseline = Baseline()
    baseline.add(accepted, justification="legacy manifest")
    assert accepted in baseline and fresh not in baseline
    active, suppressed = baseline.split([accepted, fresh])
    assert active == [fresh]
    assert suppressed == [accepted]


def test_baseline_save_load_roundtrip(tmp_path):
    baseline = Baseline()
    baseline.add(finding(), justification="known")
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert finding() in loaded
    entry = next(iter(loaded.entries.values()))
    assert entry["justification"] == "known"


def test_baseline_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 99}))
    with pytest.raises(ValueError, match="format version"):
        Baseline.load(path)


# ------------------------------------------------------------------ engine


BAD_VIEW = ClusterSpecView(
    nodes=(NodeView(name="n", cpu=4, memory=2**30, gpu=0),),
    pods=(PodView(name="p", gpu=2),),  # SPEC001
)


def test_engine_select_and_disable():
    assert {f.code for f in LintEngine().run_spec(BAD_VIEW)} == {"SPEC001"}
    assert LintEngine(disable=["SPEC001"]).run_spec(BAD_VIEW) == []
    assert LintEngine(select=["SPEC002"]).run_spec(BAD_VIEW) == []
    # disable wins over select
    assert (
        LintEngine(select=["SPEC001"], disable=["SPEC001"]).run_spec(BAD_VIEW)
        == []
    )


def test_engine_unknown_code_raises():
    with pytest.raises(KeyError, match="SPEC999"):
        LintEngine(select=["SPEC999"])
    with pytest.raises(KeyError, match="NOPE"):
        LintEngine(disable=["NOPE"])


def test_engine_baseline_suppression_and_exit_code():
    engine = LintEngine()
    report = engine.lint_views(cluster=BAD_VIEW)
    assert report.exit_code() == 1
    baseline = Baseline()
    for f in report.findings:
        baseline.add(f)
    suppressed_report = LintEngine(baseline=baseline).lint_views(
        cluster=BAD_VIEW
    )
    assert suppressed_report.findings == []
    assert len(suppressed_report.suppressed) == 1
    assert suppressed_report.exit_code() == 0
    assert suppressed_report.exit_code(strict=True) == 0
    assert "suppressed" in suppressed_report.summary()


def test_report_strict_promotes_warnings():
    engine = LintEngine()
    view = ClusterSpecView(
        nodes=(NodeView(name="n", cpu=4, memory=2**30, gpu=0),),
        pods=(
            PodView(name="p", cpu=0.0, memory=0.0, has_requests=False),
        ),  # SPEC002 warning only
    )
    report = engine.lint_views(cluster=view)
    assert report.errors == [] and len(report.warnings) == 1
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1


def test_report_render_json_shape():
    report = LintEngine().lint_views(cluster=BAD_VIEW)
    data = json.loads(report.render_json())
    assert data["summary"]["errors"] == 1
    assert data["findings"][0]["code"] == "SPEC001"


def test_lint_paths_missing_target():
    with pytest.raises(FileNotFoundError):
        LintEngine().lint_paths(["/no/such/file.json"])


# ---------------------------------------------------------------- registry


def test_registry_duplicate_code_rejected():
    from repro.analysis.registry import Rule

    rule = registry.get("SPEC001")
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(
            Rule(
                code="SPEC001",
                name="dup",
                pack="spec",
                severity=Severity.ERROR,
                description="",
                check=lambda v: [],
            )
        )


def test_registry_render_table_lists_every_code():
    table = registry.render_table()
    for code in registry.codes():
        assert code in table
