"""Seeded-defect corpus: the simulation entry module.

``driver`` in the module name marks this as a sim entry point for the
deep pass, exactly like ``repro.workflow.driver`` in the real tree.
Every defect in the sibling modules is reachable (or deliberately
unreachable) through the calls below.
"""

import clock
import envcfg
import rngpool
import shards


def run(env):
    deadline = clock.stamp()  # DET010: wall-clock via callee
    jitter = rngpool.draw()  # DET011: global RNG two hops down
    plan = shards.plan("/data")  # DET013: listdir/set order
    limit = envcfg.limit()  # DET012: os.environ read
    return deadline, jitter, plan, limit


def helper_not_reached():
    """Defined in an entry module, so itself an entry; calls nothing."""
    return 0
