"""Seeded defects: global-RNG draw reachable through two call hops,
plus an unseeded generator in a function nothing reaches (DET001 only —
the deep pass must NOT add a DET011 for it)."""

import random

import numpy as np


def _jitter():
    return random.random()  # DET011: reached via draw() from driver.run


def draw():
    return _jitter() * 2.0


def make_gen_unreached():
    return np.random.default_rng()  # DET001 (shallow), but not DET011
