"""Seeded defects: an environment read on the reachable path, and a
global-RNG draw in a helper nothing calls (must stay quiet in deep
mode — the shallow DET002 warning is requalified away)."""

import os
import random


def limit():
    return int(os.environ.get("REPRO_LIMIT", "8"))  # DET012


def dead_code_draw():
    return random.random()  # unreachable: no DET011, no DET002 in deep
