"""Seeded concurrency defects: one module exercising CONC001-003.

The ``scheduler`` fragment in the module name would mark this as a sim
entry module outside a tests/ directory; tests pass ``entry_modules``
explicitly so the corpus works from anywhere.
"""

PENDING = {}  # module-level shared state (CONC003 when mutated below)


class QueueManager:
    def __init__(self, env):
        self.env = env
        self.queue = []
        self.inflight = {}
        self.done = []

    def drain(self):
        """CONC001: guard on self.queue, yield, then pop the stale view."""
        while True:
            if len(self.queue) > 0:  # guard read
                yield self.env.timeout(1.0)  # suspension point
                item = self.queue.pop(0)  # stale: queue may have drained
                self.inflight[item] = self.env.now  # CONC002 writer (proc)
                PENDING[item] = "running"  # CONC003: module state
            else:
                yield self.env.timeout(5.0)

    def _on_done(self, item):
        """Hook-registered callback: the second CONC002 writer."""
        self.inflight.pop(item, None)
        self.done.append(item)

    def safe_refill(self):
        """Re-reads after the yield: must NOT trigger CONC001."""
        while True:
            if len(self.queue) < 8:  # guard read
                yield self.env.timeout(1.0)
                if len(self.queue) < 8:  # re-read refreshes the view
                    self.queue.append(self.env.now)


def build(env, hooks):
    mgr = QueueManager(env)
    hooks.append(mgr._on_done)  # registers the callback by reference
    env.process(mgr.drain())
    env.process(mgr.safe_refill())
    return mgr
