"""Seeded defect: wall-clock read inside a sim-reachable function."""

import time


def stamp():
    return time.time()  # DET010 when reached from driver.run
