"""Seeded defects: order-unstable iteration (os.listdir and a set
literal) feeding shard assignment — hash/OS order becomes event order."""

import os


def plan(root):
    out = []
    for name in os.listdir(root):  # DET013: OS-dependent order
        out.append(name)
    for mode in {"fast", "slow"}:  # DET013: set iteration order
        out.append(mode)
    return out


def plan_sorted(root):
    # Not a loop over the unstable iterable: stays quiet by construction.
    return sorted(os.listdir(root))
