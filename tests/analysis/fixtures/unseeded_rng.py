"""Lint fixture: a simulation helper that breaks the determinism rules.

This file is test data for the ``det`` pack — it is never imported.
"""

import random
import time

import numpy as np

rng = np.random.default_rng()  # DET001: no seed


def jitter() -> float:
    return random.uniform(0.0, 1.0) * time.time()  # DET002 + DET003
