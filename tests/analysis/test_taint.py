"""Deep determinism taint (DET010-DET013): interprocedural propagation."""

from __future__ import annotations

import pathlib

from repro.analysis import Severity, build_call_graph, run_taint_analysis
from repro.analysis.engine import LintEngine

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
CORPUS = FIXTURES / "deep_corpus"

ENTRIES = ["driver", "scheduler_conc"]


def corpus_taint():
    graph = build_call_graph([CORPUS], entry_modules=ENTRIES)
    return run_taint_analysis([CORPUS], graph=graph)


def by_code(findings):
    out = {}
    for f in findings:
        out.setdefault(f.code, []).append(f)
    return out


# ------------------------------------------------- the four deep det rules


def test_corpus_fires_each_deep_det_rule():
    codes = by_code(corpus_taint())
    assert set(codes) == {"DET010", "DET011", "DET012", "DET013"}
    assert len(codes["DET013"]) == 2  # listdir + set literal


def test_det010_wall_clock_quotes_call_path():
    (f,) = by_code(corpus_taint())["DET010"]
    assert f.severity is Severity.ERROR
    assert f.qualname == "stamp"
    assert "driver.run -> clock.stamp" in f.message
    assert "time.time()" in f.message


def test_det011_taint_crosses_two_hops():
    (f,) = by_code(corpus_taint())["DET011"]
    assert f.location.path.endswith("rngpool.py")
    assert "driver.run -> rngpool.draw -> rngpool._jitter" in f.message


def test_det012_env_read_detected():
    (f,) = by_code(corpus_taint())["DET012"]
    assert "os.environ.get" in f.message
    assert f.qualname == "limit"


def test_det013_unordered_iteration_sources():
    findings = by_code(corpus_taint())["DET013"]
    details = " ".join(f.message for f in findings)
    assert "os.listdir" in details
    assert "set literal" in details


def test_unreachable_functions_stay_quiet():
    findings = corpus_taint()
    paths = {f.location.path for f in findings}
    assert all("driver.py" not in p for p in paths)
    quals = {f.qualname for f in findings}
    assert "make_gen_unreached" not in quals
    assert "dead_code_draw" not in quals


def test_taint_findings_are_deterministic():
    first = [(f.code, f.location.path, f.location.line, f.message)
             for f in corpus_taint()]
    second = [(f.code, f.location.path, f.location.line, f.message)
              for f in corpus_taint()]
    assert first == second


# ------------------------------------------- deep requalification of DET002


def test_deep_mode_drops_shallow_det002_in_functions():
    # Shallow: dead_code_draw's random.random() is a DET002 warning.
    shallow = LintEngine().lint_paths([CORPUS / "envcfg.py"])
    assert "DET002" in {f.code for f in shallow.findings}

    # Deep: the call graph proves it unreachable; DET002 is requalified
    # away and no DET011 replaces it.
    deep = LintEngine(deep=True, entry_modules=ENTRIES)
    report = deep.lint_paths([CORPUS])
    codes_for_envcfg = {
        f.code for f in report.findings if f.location.path.endswith("envcfg.py")
    }
    assert "DET002" not in codes_for_envcfg
    assert codes_for_envcfg == {"DET012"}


def test_deep_mode_keeps_shallow_det001():
    # DET001 (unseeded generator construction) is a defect regardless of
    # reachability: the deep pass keeps it as-is.
    deep = LintEngine(deep=True, entry_modules=ENTRIES)
    report = deep.lint_paths([CORPUS])
    det001 = [f for f in report.findings if f.code == "DET001"]
    assert len(det001) == 1
    assert det001[0].location.path.endswith("rngpool.py")


# ------------------------------------------------------ fingerprint drift


def test_fingerprints_survive_file_moves_and_line_drift(tmp_path):
    original = {(f.code, f.fingerprint) for f in corpus_taint()}

    # Copy the corpus elsewhere and pad every file with leading comments
    # so all line numbers shift.
    moved = tmp_path / "relocated"
    moved.mkdir()
    for src in CORPUS.glob("*.py"):
        body = src.read_text()
        (moved / src.name).write_text("# moved\n# padding\n\n" + body)

    graph = build_call_graph([moved], entry_modules=ENTRIES)
    relocated = {(f.code, f.fingerprint)
                 for f in run_taint_analysis([moved], graph=graph)}
    assert relocated == original
