"""Det pack (DET000–DET004): the AST determinism sanitizer."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis import Severity, is_sim_path, lint_python_paths, lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

SIM = "src/repro/sim/engine.py"
PLAIN = "src/repro/viz/plots.py"


def lint(source: str, path: str = SIM):
    return lint_source(textwrap.dedent(source), path=path)


def codes_of(findings):
    return {f.code for f in findings}


# --------------------------------------------------------------- sim paths


def test_is_sim_path():
    assert is_sim_path("src/repro/sim/kernel.py")
    assert is_sim_path("src/repro/netsim/flows.py")
    assert is_sim_path("src/repro/cluster/chaos_injector.py")
    assert not is_sim_path("src/repro/viz/plots.py")
    assert not is_sim_path("src/repro/similarity.py")  # 'sim' only as a dir


# ----------------------------------------------------------------- DET001


def test_det001_unseeded_default_rng():
    findings = lint("""
        import numpy as np
        rng = np.random.default_rng()
    """)
    assert codes_of(findings) == {"DET001"}
    assert findings[0].severity is Severity.ERROR


def test_det001_seeded_rng_is_clean():
    assert lint("""
        import numpy as np
        rng = np.random.default_rng(42)
        rng2 = np.random.default_rng(seed=7)
    """) == []


def test_det001_from_import_and_alias():
    findings = lint("""
        from numpy.random import default_rng
        r = default_rng()
    """)
    assert codes_of(findings) == {"DET001"}
    findings = lint("""
        import numpy.random as npr
        r = npr.RandomState()
    """)
    assert codes_of(findings) == {"DET001"}


def test_det001_fires_outside_sim_paths_too():
    findings = lint("import numpy as np\nr = np.random.default_rng()\n",
                    path=PLAIN)
    assert codes_of(findings) == {"DET001"}
    assert findings[0].severity is Severity.ERROR


def test_unrelated_default_rng_name_not_flagged():
    # A local helper that happens to be called default_rng, no numpy link.
    assert lint("""
        def default_rng():
            return 4
        r = default_rng()
    """) == []


# ----------------------------------------------------------------- DET002


def test_det002_stdlib_random_severity_by_path():
    src = "import random\nx = random.randint(0, 5)\n"
    (sim_f,) = lint_source(src, path=SIM)
    assert sim_f.code == "DET002" and sim_f.severity is Severity.ERROR
    (plain_f,) = lint_source(src, path=PLAIN)
    assert plain_f.severity is Severity.WARNING


def test_det002_aliased_import():
    findings = lint("import random as rnd\nx = rnd.random()\n")
    assert codes_of(findings) == {"DET002"}


# ----------------------------------------------------------------- DET003


def test_det003_wall_clock_reads():
    findings = lint("""
        import time
        from datetime import datetime
        a = time.time()
        b = time.time_ns()
        c = datetime.now()
        d = datetime.utcnow()
    """)
    assert codes_of(findings) == {"DET003"}
    assert len(findings) == 4
    assert all(f.severity is Severity.ERROR for f in findings)


def test_det003_monotonic_not_flagged():
    # time.monotonic / perf_counter are not in the flagged set (they are
    # still wall-clock-ish, but the rule targets the common offenders).
    assert lint("import time\nx = time.monotonic()\n") == []


# ----------------------------------------------------------------- DET004


def test_det004_module_level_mutable_state_in_sim():
    findings = lint("""
        CACHE = {}
        ITEMS = []
        SEEN = set()
    """)
    assert codes_of(findings) == {"DET004"}
    assert len(findings) == 3
    assert all(f.severity is Severity.WARNING for f in findings)


def test_det004_quiet_outside_sim_paths():
    assert lint_source("CACHE = {}\n", path=PLAIN) == []


def test_det004_ignores_function_and_class_scope():
    assert lint("""
        def f():
            local = {}
            return local

        class C:
            table = {}
    """) == []


def test_det004_ignores_dunders_and_immutables():
    assert lint("""
        __all__ = ["a", "b"]
        NAMES = ("a", "b")
        LIMIT = 5
    """) == []


def test_det004_constructor_calls():
    findings = lint("""
        from collections import defaultdict
        REGISTRY = defaultdict(list)
        TABLE = dict()
    """)
    assert codes_of(findings) == {"DET004"}
    assert len(findings) == 2


# ----------------------------------------------------------------- DET000


def test_det000_syntax_error():
    (f,) = lint_source("def broken(:\n", path=SIM)
    assert f.code == "DET000"
    assert f.severity is Severity.ERROR


# ------------------------------------------------------------ path walking


def test_lint_python_paths_fixture_file():
    findings = lint_python_paths([FIXTURES / "unseeded_rng.py"])
    assert "DET001" in codes_of(findings)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert errors  # the acceptance fixture must fail the lint


def test_lint_python_paths_directory_recurses():
    findings = lint_python_paths([FIXTURES])
    assert "DET001" in codes_of(findings)


def test_repo_sources_are_clean():
    # Satellite: the sanitizer run over the shipped package finds nothing
    # (no unseeded RNGs, no wall-clock reads, no module-level mutable
    # state on simulation paths).
    root = pathlib.Path(__file__).resolve().parents[2]
    findings = lint_python_paths([root / "src" / "repro"])
    assert findings == []
