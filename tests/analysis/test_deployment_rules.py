"""Deployment lint (DEPLOY001-DEPLOY005): cross-layer config joins."""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.analysis import Severity, deployment_view_from_dict
from repro.analysis.deployment_rules import (
    RETRY_AMPLIFICATION_BOUND,
    priority_rank,
    run_deployment_rules,
)
from repro.loadgen import LoadgenConfig, loadtest_deployment_view

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def view_from_fixture(name):
    data = json.loads((FIXTURES / name).read_text())
    return deployment_view_from_dict(data, source=name)


def codes_of(findings):
    return [f.code for f in findings]


# ------------------------------------------------------- seeded fixtures


def test_retry_storm_fixture_fires_deploy001_004_005():
    findings = run_deployment_rules(view_from_fixture("deploy_retry_storm.json"))
    assert sorted(codes_of(findings)) == ["DEPLOY001", "DEPLOY004", "DEPLOY005"]
    by_code = {f.code: f for f in findings}
    assert by_code["DEPLOY001"].severity is Severity.ERROR
    assert "retry_after" in by_code["DEPLOY001"].message
    assert "6 pods" in by_code["DEPLOY004"].message
    # (12+1) submit x (9+1) pod x 3 transfer = 390 worst-case attempts.
    assert "390" in by_code["DEPLOY005"].message
    assert str(RETRY_AMPLIFICATION_BOUND) in by_code["DEPLOY005"].message


def test_starvation_fixture_fires_deploy002():
    findings = run_deployment_rules(view_from_fixture("deploy_starvation.json"))
    assert codes_of(findings) == ["DEPLOY002"]
    (f,) = findings
    assert f.severity is Severity.ERROR
    assert "starved-batch" in f.message
    assert "16 GPUs" in f.message


def test_quota_trap_fixture_fires_deploy003_error_and_warning():
    findings = run_deployment_rules(view_from_fixture("deploy_quota_trap.json"))
    assert sorted(codes_of(findings)) == ["DEPLOY003", "DEPLOY003"]
    severities = {f.severity for f in findings}
    assert severities == {Severity.ERROR, Severity.WARNING}
    error = next(f for f in findings if f.severity is Severity.ERROR)
    assert "train-big" in error.message and "small-lab" in error.message
    warning = next(f for f in findings if f.severity is Severity.WARNING)
    assert "mid-lab" in warning.message


# ---------------------------------------------------- loadgen integration


def test_loadgen_default_deployment_is_clean():
    view = loadtest_deployment_view(LoadgenConfig())
    assert run_deployment_rules(view) == []


def test_loadgen_view_with_impatient_client_fires_deploy001():
    view = loadtest_deployment_view(LoadgenConfig())
    bad = dataclasses.replace(
        view, client=dataclasses.replace(view.client, honors_retry_after=False)
    )
    assert "DEPLOY001" in codes_of(run_deployment_rules(bad))


def test_loadgen_view_with_runaway_retries_fires_deploy005():
    view = loadtest_deployment_view(LoadgenConfig())
    bad = dataclasses.replace(
        view,
        client=dataclasses.replace(
            view.client, max_submit_retries=20, max_pod_retries=9
        ),
    )
    assert "DEPLOY005" in codes_of(run_deployment_rules(bad))


# ----------------------------------------------------------------- helpers


def test_priority_rank_matches_cluster_classes():
    assert priority_rank("high") > priority_rank("batch")
    assert priority_rank("system") > priority_rank("high")
    assert priority_rank("no-such-class") == 0


def test_deployment_rules_are_deterministic():
    view = view_from_fixture("deploy_retry_storm.json")
    first = [(f.code, f.message) for f in run_deployment_rules(view)]
    second = [(f.code, f.message) for f in run_deployment_rules(view)]
    assert first == second
