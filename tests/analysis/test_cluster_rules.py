"""Spec pack (SPEC001–SPEC008) over fixtures, live clusters, admission."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import (
    ClusterSpecView,
    JobView,
    NamespaceView,
    NodeView,
    PodView,
    ServiceView,
    Severity,
    cluster_view,
    lint_cluster,
    registry,
)
from repro.analysis.cluster_rules import run_spec_rules
from repro.cluster import (
    Cluster,
    ContainerSpec,
    PodSpec,
    ResourceRequirements,
)
from repro.cluster.node import fiona8_node_spec, fiona_node_spec
from repro.errors import AdmissionError
from repro.sim import Environment

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

FIONA8 = NodeView(name="fiona8", cpu=24, memory=96 * 2**30, gpu=8)
DTN = NodeView(name="dtn", cpu=24, memory=96 * 2**30, gpu=0)


def codes_of(findings):
    return {f.code for f in findings}


def _pod(name="p", cpu=1.0, memory=2**30, gpu=0, **kwargs) -> PodView:
    return PodView(name=name, cpu=cpu, memory=memory, gpu=gpu, **kwargs)


# ---------------------------------------------------------------- SPEC001


def test_spec001_gpu_request_over_largest_node():
    view = ClusterSpecView(nodes=(FIONA8, DTN), pods=(_pod(gpu=16),))
    findings = run_spec_rules(view)
    assert codes_of(findings) == {"SPEC001"}
    (finding,) = findings
    assert finding.severity is Severity.ERROR
    assert "16 GPUs" in finding.message
    assert "largest node has 8" in finding.message


def test_spec001_cpu_and_memory_dimensions():
    view = ClusterSpecView(nodes=(FIONA8,), pods=(_pod(cpu=48.0),))
    assert codes_of(run_spec_rules(view)) == {"SPEC001"}
    view = ClusterSpecView(nodes=(FIONA8,), pods=(_pod(memory=200 * 2**30),))
    assert codes_of(run_spec_rules(view)) == {"SPEC001"}


def test_spec001_fitting_pod_is_clean():
    view = ClusterSpecView(nodes=(FIONA8,), pods=(_pod(gpu=8, cpu=24.0),))
    assert codes_of(run_spec_rules(view)) == set()


def test_spec001_job_template_counts_once():
    template = _pod(name="worker", gpu=9, kind="Job")
    job = JobView(name="j", parallelism=5, template=template)
    view = ClusterSpecView(nodes=(FIONA8,), jobs=(job,))
    findings = [f for f in run_spec_rules(view) if f.code == "SPEC001"]
    assert len(findings) == 1  # not one per parallel slot


# ---------------------------------------------------------------- SPEC002


def test_spec002_missing_requests():
    view = ClusterSpecView(
        nodes=(FIONA8,), pods=(_pod(cpu=0.0, memory=0.0, has_requests=False),)
    )
    findings = run_spec_rules(view)
    assert "SPEC002" in codes_of(findings)
    (f,) = [f for f in findings if f.code == "SPEC002"]
    assert f.severity is Severity.WARNING


# ---------------------------------------------------------------- SPEC003


def test_spec003_long_running_without_liveness():
    view = ClusterSpecView(
        nodes=(FIONA8,), pods=(_pod(long_running=True, has_liveness=False),)
    )
    assert "SPEC003" in codes_of(run_spec_rules(view))
    view = ClusterSpecView(
        nodes=(FIONA8,), pods=(_pod(long_running=True, has_liveness=True),)
    )
    assert "SPEC003" not in codes_of(run_spec_rules(view))


# ---------------------------------------------------------------- SPEC004


def test_spec004_zero_backoff_job():
    job = JobView(name="fragile", backoff_limit=0, template=_pod(kind="Job"))
    view = ClusterSpecView(nodes=(FIONA8,), jobs=(job,))
    assert "SPEC004" in codes_of(run_spec_rules(view))


# ---------------------------------------------------------------- SPEC005


def test_spec005_quota_oversubscription():
    ns = NamespaceView(name="small", quota_gpu=4)
    pods = tuple(
        _pod(name=f"p{i}", gpu=2, namespace="small") for i in range(3)
    )
    view = ClusterSpecView(nodes=(FIONA8,), namespaces=(ns,), pods=pods)
    findings = [f for f in run_spec_rules(view) if f.code == "SPEC005"]
    assert len(findings) == 1
    assert "gpu 6 > 4" in findings[0].message


def test_spec005_within_quota_is_clean():
    ns = NamespaceView(name="small", quota_gpu=8)
    pods = (_pod(gpu=2, namespace="small"),)
    view = ClusterSpecView(nodes=(FIONA8,), namespaces=(ns,), pods=pods)
    assert "SPEC005" not in codes_of(run_spec_rules(view))


# ---------------------------------------------------------------- SPEC006


def test_spec006_quota_exceeds_cluster():
    ns = NamespaceView(name="greedy", quota_gpu=100)
    view = ClusterSpecView(nodes=(FIONA8,), namespaces=(ns,))
    assert "SPEC006" in codes_of(run_spec_rules(view))


# ---------------------------------------------------------------- SPEC007


def test_spec007_service_selects_nothing():
    svc = ServiceView(name="lonely", selector={"app": "ghost"})
    view = ClusterSpecView(nodes=(FIONA8,), services=(svc,))
    findings = [f for f in run_spec_rules(view) if f.code == "SPEC007"]
    assert len(findings) == 1
    assert "app=ghost" in findings[0].message


def test_spec007_matched_selector_is_clean():
    svc = ServiceView(name="redis", selector={"app": "redis"})
    pod = _pod(labels={"app": "redis"})
    view = ClusterSpecView(nodes=(FIONA8,), services=(svc,), pods=(pod,))
    assert "SPEC007" not in codes_of(run_spec_rules(view))


# ---------------------------------------------------------------- SPEC008


def test_spec008_silent_when_nothing_declares_priority():
    view = ClusterSpecView(nodes=(FIONA8,), pods=(_pod("a"), _pod("b")))
    assert "SPEC008" not in codes_of(run_spec_rules(view))


def test_spec008_flags_unclassed_pods_once_priorities_exist():
    view = ClusterSpecView(
        nodes=(FIONA8,),
        pods=(
            _pod("classed", priority_class="high", has_priority=True),
            _pod("legacy"),
        ),
    )
    findings = [f for f in run_spec_rules(view) if f.code == "SPEC008"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "legacy" in findings[0].message


def test_spec008_numeric_priority_counts_as_classed():
    view = ClusterSpecView(
        nodes=(FIONA8,),
        pods=(_pod("numeric", has_priority=True), _pod("legacy")),
    )
    findings = [f for f in run_spec_rules(view) if f.code == "SPEC008"]
    assert [f.location.name for f in findings] == ["legacy"]


def test_spec008_fixture_and_baseline_grandfather(monkeypatch, capsys):
    """The shipped mixed-priority fixture trips SPEC008; the shipped
    baseline entry grandfathers the legacy pod."""
    from repro.cli import main

    repo = pathlib.Path(__file__).resolve().parents[2]
    monkeypatch.chdir(repo)
    fixture = "tests/analysis/fixtures/mixed_priority.json"
    baseline = "tests/analysis/fixtures/spec008_baseline.json"

    code = main(["lint", "--strict", fixture])
    out = capsys.readouterr().out
    assert code == 1
    assert "SPEC008" in out and "legacy-batch" in out

    code = main(["lint", "--strict", "--baseline", baseline, fixture])
    out = capsys.readouterr().out
    assert code == 0
    assert "SPEC008" not in out


# ----------------------------------------------------------- live adapter


def _live_cluster() -> Cluster:
    cluster = Cluster(Environment(), name="test")
    cluster.add_node(fiona8_node_spec("fiona8-00", site="UCSD"))
    cluster.add_node(fiona_node_spec("dtn-00", site="UCSD"))
    return cluster


def _spec(cpu=1, memory="1G", gpu=0) -> PodSpec:
    def main(ctx):
        yield ctx.env.timeout(1.0)

    return PodSpec(
        containers=[
            ContainerSpec(
                name="c",
                image="img",
                main=main,
                resources=ResourceRequirements(cpu=cpu, memory=memory, gpu=gpu),
            )
        ]
    )


def test_cluster_view_adapter_and_lint_cluster():
    cluster = _live_cluster()
    view = cluster_view(cluster)
    assert {n.name for n in view.nodes} == {"fiona8-00", "dtn-00"}
    assert max(n.gpu for n in view.nodes) == 8
    assert lint_cluster(cluster) == []


# -------------------------------------------------------- admission hook


def test_admission_rejects_unschedulable_pod():
    cluster = _live_cluster()
    cluster.enable_admission_lint()
    with pytest.raises(AdmissionError) as excinfo:
        cluster.create_pod("huge", _spec(gpu=16))
    assert "SPEC001" in str(excinfo.value)
    assert excinfo.value.findings
    # The pod was never admitted.
    assert ("default", "huge") not in cluster.pods


def test_admission_allows_schedulable_pod():
    cluster = _live_cluster()
    cluster.enable_admission_lint()
    pod = cluster.create_pod("fine", _spec(gpu=1))
    assert pod.meta.name == "fine"


def test_admission_warns_without_rejecting():
    cluster = _live_cluster()
    cluster.enable_admission_lint()
    # No requests at all -> SPEC002 warning, recorded as an event.
    def main(ctx):
        yield ctx.env.timeout(1.0)

    bare = PodSpec(
        containers=[ContainerSpec(name="c", image="img", main=main)]
    )
    cluster.create_pod("bare", bare)
    events = [
        e for e in cluster.events if e.reason == "AdmissionLintWarning"
    ]
    assert events and "SPEC002" in events[0].message


def test_admission_rejects_oversized_job_template():
    from repro.cluster import JobSpec

    cluster = _live_cluster()
    cluster.enable_admission_lint()
    with pytest.raises(AdmissionError):
        cluster.create_job(
            "huge-job",
            JobSpec(template=lambda i: _spec(gpu=16), completions=2,
                    parallelism=2),
        )
    assert ("default", "huge-job") not in cluster.jobs


def test_admission_disabled_by_default_and_toggleable():
    cluster = _live_cluster()
    pod = cluster.create_pod("huge", _spec(gpu=16))  # only Pending forever
    assert pod in cluster.pending_pods() or pod is not None
    cluster.enable_admission_lint()
    with pytest.raises(AdmissionError):
        cluster.create_pod("huge2", _spec(gpu=16))
    cluster.disable_admission_lint()
    cluster.create_pod("huge3", _spec(gpu=16))


def test_admission_unknown_code_fails_loudly():
    cluster = _live_cluster()
    with pytest.raises(KeyError):
        cluster.enable_admission_lint(codes=("SPEC999",))


def test_testbed_admission_lint_param():
    from repro.testbed import build_nautilus_testbed

    testbed = build_nautilus_testbed(seed=1, scale=0.001, admission_lint=True)
    with pytest.raises(AdmissionError):
        testbed.cluster.create_pod("huge", _spec(gpu=16))


def test_registry_spec_pack_complete():
    assert registry.codes(pack="spec") == [
        f"SPEC00{i}" for i in range(1, 9)
    ]
