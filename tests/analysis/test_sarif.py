"""SARIF 2.1.0 rendering and the hand-rolled structural validator."""

from __future__ import annotations

import json
import pathlib

from repro.analysis import validate_sarif
from repro.analysis.engine import LintEngine
from repro.analysis.sarif import SARIF_VERSION, to_sarif

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
CORPUS = FIXTURES / "deep_corpus"


def deep_report():
    engine = LintEngine(deep=True, entry_modules=["driver", "scheduler_conc"])
    return engine.lint_paths([CORPUS])


def shallow_report(path):
    return LintEngine().lint_paths([path])


# ----------------------------------------------------------------- render


def test_sarif_log_shape_and_rules():
    doc = to_sarif(deep_report())
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    # Only rules that actually fired are listed, and every result's
    # ruleId resolves to one of them.
    assert {"DET010", "CONC001"} <= rule_ids
    assert {r["ruleId"] for r in run["results"]} <= rule_ids


def test_sarif_results_carry_fingerprints_and_locations():
    report = deep_report()
    doc = to_sarif(report)
    results = doc["runs"][0]["results"]
    assert len(results) == len(report.findings)
    fingerprints = {f.fingerprint for f in report.findings}
    for res in results:
        assert res["partialFingerprints"]["reproLint/v2"] in fingerprints
        phys = res["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"]
        assert phys["region"]["startLine"] >= 1


def test_sarif_levels_map_severities():
    doc = to_sarif(deep_report())
    levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
    assert levels["DET010"] == "error"
    assert levels["CONC001"] == "warning"


def test_sarif_object_findings_use_logical_coordinates():
    doc = to_sarif(shallow_report(FIXTURES / "bad_gpu.json"))
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "SPEC001" for r in results)
    for res in results:
        # Object findings have no file/line; the coordinate string
        # stands in for the artifact URI.
        assert res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]


def test_sarif_suppressed_findings_marked_external(tmp_path):
    report = deep_report()
    assert report.findings
    # Push everything into a baseline, re-run: all suppressed.
    from repro.analysis import Baseline

    baseline = Baseline()
    for f in report.findings:
        baseline.add(f)
    engine = LintEngine(
        deep=True, entry_modules=["driver", "scheduler_conc"],
        baseline=baseline,
    )
    suppressed_report = engine.lint_paths([CORPUS])
    assert suppressed_report.findings == []
    assert suppressed_report.suppressed

    doc = to_sarif(suppressed_report)
    results = doc["runs"][0]["results"]
    assert results
    assert all(r["suppressions"] == [{"kind": "external"}] for r in results)
    assert validate_sarif(doc) == []


def test_render_sarif_is_deterministic_json():
    first = deep_report().render_sarif()
    second = deep_report().render_sarif()
    assert first == second
    json.loads(first)  # well-formed


# --------------------------------------------------------------- validate


def test_validate_accepts_generated_logs():
    assert validate_sarif(to_sarif(deep_report())) == []
    assert validate_sarif(to_sarif(shallow_report(FIXTURES / "bad_gpu.json"))) == []


def test_validate_rejects_bad_logs():
    assert validate_sarif([]) == ["log must be an object"]
    assert any("version" in p for p in validate_sarif({"runs": [{}]}))
    assert any("runs" in p for p in validate_sarif({"version": SARIF_VERSION}))

    doc = to_sarif(deep_report())
    doc["runs"][0]["results"][0]["level"] = "fatal"
    assert any("level" in p for p in validate_sarif(doc))

    doc = to_sarif(deep_report())
    del doc["runs"][0]["results"][0]["message"]
    assert any("message.text" in p for p in validate_sarif(doc))

    doc = to_sarif(deep_report())
    doc["runs"][0]["results"][0]["ruleId"] = "NOPE999"
    assert any("missing from driver rules" in p for p in validate_sarif(doc))

    doc = to_sarif(deep_report())
    doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "region"
    ]["startLine"] = 0
    assert any("startLine" in p for p in validate_sarif(doc))
