"""``repro lint`` CLI: the acceptance-criteria exit codes and options."""

from __future__ import annotations

import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO = pathlib.Path(__file__).resolve().parents[2]


def run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ------------------------------------------------------- acceptance gates


def test_lint_exits_nonzero_on_unschedulable_gpu_fixture(capsys):
    code, out, _err = run(["lint", str(FIXTURES / "bad_gpu.json")], capsys)
    assert code == 1
    assert "SPEC001" in out
    assert "16 GPUs" in out


def test_lint_exits_nonzero_on_cyclic_workflow_fixture(capsys):
    code, out, _err = run(
        ["lint", str(FIXTURES / "cyclic_workflow.json")], capsys
    )
    assert code == 1
    assert "DAG001" in out
    assert "->" in out  # the full cycle path is quoted


def test_lint_exits_nonzero_on_unseeded_rng_fixture(capsys):
    code, out, _err = run(
        ["lint", str(FIXTURES / "unseeded_rng.py")], capsys
    )
    assert code == 1
    assert "DET001" in out


def test_lint_exits_zero_on_clean_fixture(capsys):
    code, out, _err = run(["lint", str(FIXTURES / "good_deploy.json")], capsys)
    assert code == 0
    assert "0 error(s)" in out


def test_lint_exits_zero_on_shipped_examples(capsys):
    code, _out, _err = run(
        ["lint", "--strict", str(REPO / "examples")], capsys
    )
    assert code == 0


def test_lint_exits_zero_on_package_sources(capsys):
    code, _out, _err = run(
        ["lint", "--strict", str(REPO / "src" / "repro")], capsys
    )
    assert code == 0


def test_lint_default_target_testbed_and_connect(capsys):
    # No paths: lint the built testbed + the CONNECT workflow.
    code, out, _err = run(["lint", "--scale", "0.001"], capsys)
    assert code == 0
    assert "0 error(s)" in out


# ----------------------------------------------------------------- options


def test_lint_json_format(capsys):
    code, out, _err = run(
        ["lint", "--format", "json", str(FIXTURES / "bad_gpu.json")], capsys
    )
    assert code == 1
    data = json.loads(out)
    assert data["summary"]["errors"] >= 1
    assert data["findings"][0]["code"] == "SPEC001"


def test_lint_select_and_disable(capsys):
    target = str(FIXTURES / "bad_gpu.json")
    code, out, _err = run(["lint", "--disable", "SPEC001", target], capsys)
    assert code == 0
    code, out, _err = run(["lint", "--select", "SPEC002", target], capsys)
    assert code == 0
    code, out, _err = run(["lint", "--select", "SPEC001", target], capsys)
    assert code == 1


def test_lint_strict_fails_on_warnings(capsys):
    fixture = FIXTURES / "warn_only.json"
    code, out, _err = run(["lint", str(fixture)], capsys)
    assert code == 0  # warnings alone pass by default
    code, out, _err = run(["lint", "--strict", str(fixture)], capsys)
    assert code == 1
    assert "SPEC004" in out


def test_lint_unknown_rule_code_is_usage_error(capsys):
    code, _out, err = run(
        ["lint", "--select", "SPEC999", str(FIXTURES / "bad_gpu.json")],
        capsys,
    )
    assert code == 2
    assert "SPEC999" in err


def test_lint_missing_path_is_usage_error(capsys):
    code, _out, err = run(["lint", "/no/such/thing.json"], capsys)
    assert code == 2
    assert "no such lint target" in err


def test_lint_list_rules(capsys):
    code, out, _err = run(["lint", "--list-rules"], capsys)
    assert code == 0
    for prefix in ("SPEC001", "DAG001", "DET001"):
        assert prefix in out


# ---------------------------------------------------------------- baseline


def test_lint_baseline_roundtrip(tmp_path, capsys):
    target = str(FIXTURES / "bad_gpu.json")
    baseline = tmp_path / "baseline.json"

    # Without a baseline the fixture fails.
    code, _out, _err = run(["lint", target], capsys)
    assert code == 1

    # Accept the current findings into a baseline.
    code, out, _err = run(
        ["lint", "--baseline", str(baseline), "--update-baseline", target],
        capsys,
    )
    assert code == 0
    assert baseline.exists()

    # With the baseline the same findings are suppressed.
    code, out, _err = run(["lint", "--baseline", str(baseline), target], capsys)
    assert code == 0
    assert "suppressed" in out


def test_lint_update_baseline_requires_path(capsys):
    code, _out, err = run(
        ["lint", "--update-baseline", str(FIXTURES / "bad_gpu.json")], capsys
    )
    assert code == 2
    assert "--baseline" in err


# -------------------------------------------------------------- deep mode


def copy_corpus(tmp_path):
    # Copied out of tests/ so entry-module auto-detection kicks in
    # (driver/scheduler markers), exactly as it would in a real tree.
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for src in (FIXTURES / "deep_corpus").glob("*.py"):
        (corpus / src.name).write_text(src.read_text())
    return corpus


def test_lint_deep_exits_nonzero_on_corpus(tmp_path, capsys):
    code, out, _err = run(["lint", "--deep", str(copy_corpus(tmp_path))], capsys)
    assert code == 1
    for expected in ("DET010", "DET011", "DET012", "DET013",
                     "CONC001", "CONC002", "CONC003"):
        assert expected in out
    assert "->" in out  # call paths are quoted


def test_lint_deep_requalifies_shallow_det002(tmp_path, capsys):
    corpus = copy_corpus(tmp_path)
    code, out, _err = run(["lint", str(corpus)], capsys)
    assert "DET002" in out  # shallow: random.random() warnings
    code, out, _err = run(["lint", "--deep", str(corpus)], capsys)
    assert "DET002" not in out  # deep: requalified to DET011 or dropped
    assert "DET011" in out


def test_lint_deep_fires_deploy_rules_on_json(capsys):
    code, out, _err = run(
        ["lint", "--deep", str(FIXTURES / "deploy_retry_storm.json")], capsys
    )
    assert code == 1
    for expected in ("DEPLOY001", "DEPLOY004", "DEPLOY005"):
        assert expected in out


def test_lint_shallow_skips_deploy_rules_on_json(capsys):
    code, _out, _err = run(
        ["lint", str(FIXTURES / "deploy_retry_storm.json")], capsys
    )
    assert code == 0  # spec/dag view of the same file is clean


def test_lint_deep_select_and_disable_new_codes(tmp_path, capsys):
    corpus = str(copy_corpus(tmp_path))
    code, out, _err = run(
        ["lint", "--deep", "--select", "CONC002", corpus], capsys
    )
    assert code == 0  # CONC002 is a warning
    assert "CONC002" in out and "DET010" not in out
    code, out, _err = run(
        ["lint", "--deep", "--strict", "--disable", "DET010,DET011,DET012,"
         "DET013,DET001,CONC001,CONC002,CONC003", corpus],
        capsys,
    )
    assert code == 0


def test_lint_deep_sarif_output_validates(tmp_path, capsys):
    import json as _json

    from repro.analysis import validate_sarif

    code, out, _err = run(
        ["lint", "--deep", "--format", "sarif", str(copy_corpus(tmp_path))],
        capsys,
    )
    assert code == 1
    doc = _json.loads(out)
    assert validate_sarif(doc) == []
    rule_ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert "DET010" in rule_ids and "CONC001" in rule_ids


def test_lint_deep_output_is_byte_identical_across_runs(tmp_path, capsys):
    corpus = str(copy_corpus(tmp_path))
    runs = []
    for _ in range(2):
        _code, out, _err = run(
            ["lint", "--deep", "--format", "sarif", corpus], capsys
        )
        runs.append(out)
    assert runs[0] == runs[1]


def test_lint_deep_baseline_roundtrip_and_autoload(tmp_path, capsys, monkeypatch):
    corpus = str(copy_corpus(tmp_path))
    monkeypatch.chdir(tmp_path)

    code, _out, _err = run(["lint", "--deep", corpus], capsys)
    assert code == 1

    # Accept everything into the default baseline file name.
    code, _out, _err = run(
        ["lint", "--deep", "--baseline", "lint-baseline.json",
         "--update-baseline", corpus],
        capsys,
    )
    assert code == 0

    # Without --baseline, deep mode auto-loads ./lint-baseline.json.
    code, out, _err = run(["lint", "--deep", "--strict", corpus], capsys)
    assert code == 0
    assert "suppressed" in out


def test_lint_deep_strict_repo_root_passes_with_committed_baseline(
    capsys, monkeypatch
):
    # The CI gate: deep lint over the whole package (testbed views,
    # loadtest deployment, package sources) passes with the committed
    # baseline of documented exceptions.
    monkeypatch.chdir(REPO)
    code, out, _err = run(
        ["lint", "--deep", "--strict", "--scale", "0.001"], capsys
    )
    assert code == 0
