"""Concurrency hazards (CONC001-CONC003) over the seeded corpus."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis import Severity, build_call_graph, run_concurrency_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
CORPUS = FIXTURES / "deep_corpus"
REPO = pathlib.Path(__file__).resolve().parents[2]

ENTRIES = ["driver", "scheduler_conc"]


def corpus_conc():
    graph = build_call_graph([CORPUS], entry_modules=ENTRIES)
    return run_concurrency_rules([CORPUS], graph=graph)


def by_code(findings):
    out = {}
    for f in findings:
        out.setdefault(f.code, []).append(f)
    return out


def test_corpus_fires_each_conc_rule_exactly_once():
    codes = by_code(corpus_conc())
    assert set(codes) == {"CONC001", "CONC002", "CONC003"}
    assert all(len(v) == 1 for v in codes.values())
    assert all(f.severity is Severity.WARNING for f in corpus_conc())


def test_conc001_stale_guard_across_yield():
    (f,) = by_code(corpus_conc())["CONC001"]
    assert f.qualname == "QueueManager.drain"
    assert "self.queue" in f.message
    assert "yield" in f.message


def test_conc001_re_read_after_yield_is_safe():
    # safe_refill re-checks the guard after the yield: no finding.
    quals = {f.qualname for f in corpus_conc()}
    assert "QueueManager.safe_refill" not in quals


def test_conc002_callback_vs_process_writer():
    (f,) = by_code(corpus_conc())["CONC002"]
    assert "self.inflight" in f.message
    assert "QueueManager._on_done" in f.message
    assert "QueueManager.drain" in f.message
    # Anchored at the attribute's declaration in __init__.
    assert f.qualname == "QueueManager.__init__"


def test_conc003_module_level_mutable():
    (f,) = by_code(corpus_conc())["CONC003"]
    assert "PENDING" in f.message
    assert "QueueManager.drain" in f.message


def test_conc_rules_need_sim_reachability(tmp_path):
    # The same hazard pattern in a module nothing reaches stays quiet.
    mod = tmp_path / "orphan.py"
    mod.write_text(
        textwrap.dedent(
            """
            STATE = {}


            class M:
                def __init__(self, env):
                    self.env = env
                    self.q = []

                def loop(self):
                    while True:
                        if self.q:
                            yield self.env.timeout(1)
                            self.q.pop()
                            STATE["x"] = 1
            """
        )
    )
    graph = build_call_graph([tmp_path], entry_modules=["no_such_module"])
    assert run_concurrency_rules([tmp_path], graph=graph) == []


def test_repo_gateway_watched_is_the_only_repo_hazard():
    graph = build_call_graph([REPO / "src" / "repro"])
    findings = run_concurrency_rules([REPO / "src" / "repro"], graph=graph)
    assert [f.code for f in findings] == ["CONC002"]
    (f,) = findings
    assert f.location.path.endswith("gateway.py")
    assert "_watched" in f.message
