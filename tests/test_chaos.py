"""Tests for the chaos monkey and workflow survival under churn."""

import pytest

from repro.chaos import ChaosMonkey
from repro.testbed import build_nautilus_testbed
from repro.workflow import DownloadStep, Workflow, WorkflowDriver


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=4, scale=0.005)


class TestChaosMonkey:
    def test_injects_and_recovers(self, testbed):
        monkey = ChaosMonkey(
            testbed, mean_interval=30.0, recovery_after=20.0, seed=1
        )
        testbed.env.run(until=600)
        monkey.stop()
        testbed.env.run(until=700)  # let pending recoveries land
        kinds = {e.kind for e in monkey.events}
        assert "node-fail" in kinds
        assert "node-recover" in kinds
        # Every failed node eventually recovered.
        failed = [e.target for e in monkey.events if e.kind == "node-fail"]
        recovered = [e.target for e in monkey.events if e.kind == "node-recover"]
        assert sorted(failed) == sorted(recovered)

    def test_never_kills_last_node(self):
        testbed = build_nautilus_testbed(
            seed=4, scale=0.0001, n_fiona8=1, n_dtn=1
        )
        ChaosMonkey(testbed, mean_interval=10.0, recovery_after=1e9, seed=2)
        testbed.env.run(until=500)
        assert len(testbed.cluster.ready_nodes()) >= 1

    def test_max_failures_respected(self, testbed):
        monkey = ChaosMonkey(
            testbed, mean_interval=10.0, recovery_after=5.0,
            max_failures=3, seed=3,
        )
        testbed.env.run(until=2000)
        assert monkey.failures_injected <= 3

    def test_deterministic_under_seed(self):
        def trace(seed):
            tb = build_nautilus_testbed(seed=9, scale=0.0001)
            monkey = ChaosMonkey(tb, mean_interval=50.0, recovery_after=10.0,
                                 seed=seed)
            tb.env.run(until=500)
            return [(e.time, e.kind, e.target) for e in monkey.events]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_osd_failures_trigger_ceph_recovery(self, testbed):
        testbed.ceph.put_sync("merra", "precious", 1e9)
        monkey = ChaosMonkey(
            testbed, mean_interval=20.0, recovery_after=30.0,
            include_osds=True, seed=5,
        )
        testbed.env.run(until=3000)
        monkey.stop()
        osd_fails = [e for e in monkey.events if e.kind == "osd-fail"]
        assert osd_fails  # at least one storage failure injected
        # Ceph re-replicated: the object is still fully available.
        assert len(testbed.ceph.holders("merra", "precious")) >= 1
        testbed.env.run(until=4000)
        assert testbed.ceph.degraded_objects() == 0

    def test_validation(self, testbed):
        with pytest.raises(ValueError):
            ChaosMonkey(testbed, mean_interval=0)


class TestWorkflowUnderChaos:
    def test_download_survives_sustained_churn(self, testbed):
        """The §V claim, end to end: the step-1 job completes all work
        despite nodes failing and rejoining throughout."""
        monkey = ChaosMonkey(
            testbed, mean_interval=60.0, recovery_after=45.0,
            max_failures=5, seed=11,
        )
        report = WorkflowDriver(testbed).run(
            Workflow("churn", [DownloadStep()])
        )
        assert report.succeeded
        step = report.steps[0]
        assert step.artifacts["files_downloaded"] == len(testbed.archive)
        # If chaos actually hit workers, their work was re-queued.
        if monkey.failures_injected:
            assert step.artifacts["queue_requeued"] >= 0
