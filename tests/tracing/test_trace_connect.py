"""End-to-end tracing tests on a small traced CONNECT run.

One tiny workflow run (module-scoped) feeds every test here: span-tree
invariants, critical-path attribution, the Chrome exporter, and the
span→metrics bridge.
"""

import json

import pytest

from repro.monitoring.metrics import MetricRegistry
from repro.testbed import build_nautilus_testbed
from repro.tracing import (
    LAYER_CATEGORIES,
    analyze_run,
    spans_to_metrics,
    to_chrome_trace,
    validate_spans,
    validate_trace,
    write_chrome_trace,
)
from repro.workflow import WorkflowDriver, build_connect_workflow


@pytest.fixture(scope="module")
def traced_run():
    testbed = build_nautilus_testbed(seed=7, scale=0.001)
    workflow = build_connect_workflow(
        testbed, n_workers=3, n_gpus=4, real_ml=False
    )
    report = WorkflowDriver(testbed).run(workflow)
    assert report.succeeded
    return testbed, workflow, report


def _spans(traced_run):
    return traced_run[0].tracer.finished_spans()


def test_span_tree_is_valid(traced_run):
    spans = _spans(traced_run)
    assert spans, "traced run produced no spans"
    assert validate_spans(spans) == []


def test_root_span_matches_report(traced_run):
    testbed, workflow, report = traced_run
    roots = [s for s in _spans(traced_run) if s.parent_id is None]
    assert len(roots) == 1
    (root,) = roots
    assert root.category == "workflow"
    assert root.name == workflow.name
    assert root.status == "ok"
    assert root.duration == pytest.approx(report.total_duration_s, rel=1e-9)


def test_step_spans_mirror_report_steps(traced_run):
    testbed, workflow, report = traced_run
    spans = _spans(traced_run)
    (root,) = [s for s in spans if s.parent_id is None]
    steps = [s for s in spans if s.category == "step"]
    assert {s.name for s in steps} == {r.name for r in report.steps}
    for s in steps:
        assert s.parent_id == root.span_id
        assert s.status == "ok"
        assert s.attributes["step"] == s.name
        step_report = report.step(s.name)
        assert s.duration == pytest.approx(
            step_report.end_time - step_report.start_time, rel=1e-9
        )


def test_every_layer_is_represented(traced_run):
    categories = {s.category for s in _spans(traced_run)}
    # All four attribution layers plus the structural categories show up
    # in a full CONNECT run.
    for layer in LAYER_CATEGORIES:
        assert layer in categories, f"no {layer!r} spans in traced run"
    assert {"workflow", "step", "running"} <= categories


def test_transfer_spans_carry_bytes_and_rate(traced_run):
    transfers = [
        s for s in _spans(traced_run)
        if s.category == "transfer" and s.status == "ok"
    ]
    assert transfers
    for s in transfers:
        assert s.attributes.get("bytes", 0) >= 0
        if s.duration > 0 and "rate_Bps" in s.attributes:
            assert s.attributes["rate_Bps"] == pytest.approx(
                s.attributes["bytes"] / s.duration, rel=1e-6
            )


def test_critical_path_attribution_sums_to_total(traced_run):
    testbed, workflow, report = traced_run
    analysis = analyze_run(_spans(traced_run))
    assert analysis.workflow == workflow.name
    assert analysis.total_s == pytest.approx(report.total_duration_s, rel=1e-9)
    # Acceptance: per-layer attribution sums to the run total within 1%
    # (the interval sweep makes it exact, so assert much tighter).
    assert sum(analysis.layers.values()) == pytest.approx(
        analysis.total_s, rel=1e-6
    )
    assert 0.0 < analysis.critical_path_s <= analysis.total_s + 1e-9
    # The CONNECT DAG is a chain, so the critical chain is all four steps.
    assert [name for name, _ in analysis.chain] == [
        "download", "training", "inference", "visualization"
    ]
    rendered = analysis.render()
    assert "critical" in rendered.lower()
    for layer in LAYER_CATEGORIES:
        assert layer in rendered


def test_chrome_trace_exports_and_validates(traced_run, tmp_path):
    spans = _spans(traced_run)
    data = to_chrome_trace(spans)
    assert validate_trace(data) == []
    complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(spans)
    meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
    assert meta, "expected thread_name metadata events"
    # Timestamps are in microseconds of simulated time.
    by_id = {e["args"]["span_id"]: e for e in complete}
    for s in spans:
        event = by_id[s.span_id]
        assert event["ts"] == pytest.approx(s.start * 1e6)
        assert event["dur"] == pytest.approx(s.duration * 1e6)

    path = write_chrome_trace(spans, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert validate_trace(loaded) == []


def test_spans_to_metrics_bridges_into_registry(traced_run):
    testbed, workflow, report = traced_run
    registry = MetricRegistry(testbed.env)
    spans_to_metrics(_spans(traced_run), registry, workflow=workflow.name)
    duration_series = registry.all_series("span_duration_seconds")
    assert duration_series
    labels = {dict(ts.labels).get("category") for ts in duration_series}
    assert "step" in labels and "workflow" in labels
    total = registry.counter_sum("spans_total")
    assert total == pytest.approx(float(len(_spans(traced_run))))


def test_deadline_killed_step_closes_spans_as_error():
    """A step killed by its timeout must not leave dangling spans."""
    testbed = build_nautilus_testbed(seed=7, scale=0.0005)
    workflow = build_connect_workflow(
        testbed, n_workers=2, n_gpus=2, real_ml=False
    )
    workflow.steps["download"].timeout_s = 1.0  # impossibly tight
    report = WorkflowDriver(testbed).run(workflow)
    assert not report.succeeded
    spans = testbed.tracer.finished_spans()
    assert validate_spans(spans) == []
    by_name = {s.name: s for s in spans}
    assert by_name["download"].status == "error"
    (root,) = [s for s in spans if s.parent_id is None]
    assert root.status == "error"
