"""Trace determinism: same inputs → same trace, across compute engines.

The batched wavefront engine is a performance path; it must be
observationally identical to the serial reference — including in the
trace it emits (engine shows up only as a span attribute).
"""

import numpy as np
import pytest

from repro.ml.ffn import FFNConfig, FFNModel
from repro.ml.inference import segment_volume
from repro.tracing import Tracer, validate_spans


def _make_model():
    return FFNModel(FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=3))


def _make_volume():
    rng = np.random.default_rng(11)
    volume = rng.random((12, 16, 16)).astype(np.float32)
    volume[4:8, 4:10, 4:10] += 2.0
    return volume


def _traced_segment(engine: str):
    tracer = Tracer.counting(step=1.0)
    root = tracer.start_root("seg", "workflow")
    labels = segment_volume(
        _make_model(), _make_volume(), engine=engine,
        tracer=tracer, span_parent=root,
    )
    tracer.finish_root(root)
    return labels, tracer.finished_spans()


def _signature(spans):
    """Everything about a trace except ids/times and the engine attr."""
    return [
        (
            s.name,
            s.category,
            s.status,
            tuple(sorted(
                (k, repr(v)) for k, v in s.attributes.items()
                if k != "engine"
            )),
        )
        for s in spans
    ]


def test_serial_and_batched_traces_identical():
    labels_serial, spans_serial = _traced_segment("serial")
    labels_batched, spans_batched = _traced_segment("batched")
    np.testing.assert_array_equal(labels_serial, labels_batched)
    assert validate_spans(spans_serial) == []
    assert validate_spans(spans_batched) == []
    assert _signature(spans_serial) == _signature(spans_batched)
    # The only allowed difference: the engine attribute itself.
    engines = {
        s.attributes["engine"]
        for spans in (spans_serial, spans_batched)
        for s in spans
        if "engine" in s.attributes
    }
    assert engines == {"serial", "batched"}


def test_same_engine_trace_is_reproducible():
    _, first = _traced_segment("batched")
    _, second = _traced_segment("batched")
    assert [s.to_dict() for s in first] == [s.to_dict() for s in second]


def test_counting_clock_orders_spans():
    _, spans = _traced_segment("serial")
    starts = [s.start for s in spans]
    assert starts == sorted(starts)  # creation order == time order
    segment = [s for s in spans if s.name == "segment_volume"]
    assert len(segment) == 1
    assert segment[0].attributes["objects"] >= 1
