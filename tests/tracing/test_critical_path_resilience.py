"""Critical-path analysis must survive preempted/evicted pod spans.

Preemption closes a pod's lifecycle span with ``status="error"`` and —
when the driver itself is torn down — can leave the workflow root span
unfinished.  Neither may break :func:`analyze_run` or the per-layer
time-partition invariant (layer totals sum exactly to the analysis
window).
"""

import pytest

from repro.cluster import (
    ContainerSpec,
    PodPhase,
    PodSpec,
    ResourceRequirements,
)
from repro.testbed import build_nautilus_testbed
from repro.tracing import analyze_run, validate_spans
from repro.tracing.span import Span
from repro.workflow import WorkflowDriver, build_connect_workflow


def _sleeper(duration):
    def main(ctx):
        yield ctx.env.timeout(duration)

    return main


@pytest.fixture(scope="module")
def preempted_run():
    """A CONNECT run whose pods get preempted mid-flight by a
    high-priority flood sized to each node's full capacity."""
    testbed = build_nautilus_testbed(seed=7, scale=0.001)
    env, cluster = testbed.env, testbed.cluster
    workflow = build_connect_workflow(
        testbed, n_workers=3, n_gpus=4, real_ml=False
    )

    def bully():
        while True:
            running = [
                p
                for p in cluster.pods.values()
                if p.phase is PodPhase.RUNNING
            ]
            if len(running) >= 2:
                break
            yield env.timeout(10.0)
        yield env.timeout(50.0)
        cluster.create_namespace("bully")
        for i, node in enumerate(cluster.nodes.values()):
            spec = PodSpec(
                containers=[
                    ContainerSpec(
                        name="bully",
                        image="bully:1",
                        main=_sleeper(120.0),
                        resources=ResourceRequirements(
                            cpu=node.spec.cpu,
                            memory=node.spec.memory,
                            gpu=float(node.spec.gpus),
                        ),
                    )
                ],
                priority_class="high",
            )
            cluster.create_pod(f"bully-{i}", spec, namespace="bully")
        yield env.timeout(0.0)

    env.process(bully())
    report = WorkflowDriver(testbed).run(workflow)
    return testbed, workflow, report


def test_preempted_pods_leave_error_spans(preempted_run):
    testbed, _workflow, _report = preempted_run
    preempted = [
        p
        for p in testbed.cluster.pods.values()
        if p.termination_reason == "Preempted"
    ]
    assert preempted, "scenario failed to preempt any pod"
    errors = [s for s in testbed.tracer.spans if s.status == "error"]
    assert errors, "preemption should close lifecycle spans as errors"
    assert validate_spans(testbed.tracer.finished_spans()) == []


def test_partition_invariant_survives_preemption(preempted_run):
    testbed, workflow, _report = preempted_run
    analysis = analyze_run(testbed.tracer.spans)
    assert analysis.workflow == workflow.name
    # Exact partition: the error-status queueing/scheduling spans of the
    # preempted pods still claim their intervals.
    assert sum(analysis.layers.values()) == pytest.approx(
        analysis.total_s, rel=1e-9
    )
    assert analysis.layers["scheduling"] > 0.0


def test_analyze_run_tolerates_unfinished_root():
    """An evicted run can leave the workflow root span open; analysis
    falls back to the observed horizon instead of raising."""
    spans = [
        Span(
            name="wf",
            category="workflow",
            span_id=1,
            parent_id=None,
            start=0.0,
            end=None,
            attributes={"workflow": "wf"},
            status="unfinished",
        ),
        Span(
            name="train",
            category="step",
            span_id=2,
            parent_id=1,
            start=0.0,
            end=80.0,
            attributes={"step": "train", "depends_on": []},
            status="error",
        ),
        Span(
            name="pod-q",
            category="queueing",
            span_id=3,
            parent_id=2,
            start=0.0,
            end=10.0,
            status="error",
        ),
        Span(
            name="pod-s",
            category="scheduling",
            span_id=4,
            parent_id=2,
            start=10.0,
            end=15.0,
            status="error",
        ),
        Span(
            name="pod-run",
            category="compute",
            span_id=5,
            parent_id=2,
            start=15.0,
            end=100.0,
            status="error",
        ),
        # Malformed span (end < start) — possible in externally-loaded
        # traces; must be skipped, not poison the sweep.
        Span(
            name="bogus",
            category="transfer",
            span_id=6,
            parent_id=2,
            start=50.0,
            end=40.0,
            status="error",
        ),
    ]
    analysis = analyze_run(spans)
    # Window runs to the latest finished timestamp (the compute span).
    assert analysis.total_s == pytest.approx(100.0)
    assert sum(analysis.layers.values()) == pytest.approx(100.0)
    assert analysis.layers["queueing"] == pytest.approx(10.0)
    assert analysis.layers["scheduling"] == pytest.approx(5.0)
    assert analysis.layers["compute"] == pytest.approx(85.0)
    assert analysis.layers["transfer"] == pytest.approx(0.0)


def test_analyze_run_without_workflow_span_still_raises():
    with pytest.raises(ValueError):
        analyze_run([])
