"""Unit tests for the span/tracer core: tree invariants, scopes, errors."""

import pytest

from repro.tracing import Span, Tracer, validate_spans


@pytest.fixture
def tracer():
    return Tracer.counting(step=1.0)


def test_span_tree_shape_and_ids(tracer):
    root = tracer.start_root("run", "workflow")
    a = tracer.start("a", "step", parent=root)
    b = tracer.start("b", "compute", parent=a)
    tracer.finish(b)
    tracer.finish(a)
    tracer.finish_root(root)

    spans = tracer.finished_spans()
    assert [s.name for s in spans] == ["run", "a", "b"]  # creation order
    assert len({s.span_id for s in spans}) == 3
    assert validate_spans(spans) == []

    by_name = {s.name: s for s in spans}
    assert by_name["a"].parent_id == by_name["run"].span_id
    assert by_name["b"].parent_id == by_name["a"].span_id
    assert by_name["run"].parent_id is None


def test_child_contained_in_parent(tracer):
    root = tracer.start_root("run", "workflow")
    child = tracer.start("c", "compute", parent=root)
    tracer.finish(child)
    tracer.finish_root(root)
    spans = tracer.finished_spans()
    by_name = {s.name: s for s in spans}
    assert by_name["run"].start <= by_name["c"].start
    assert by_name["c"].end <= by_name["run"].end


def test_default_parent_is_bound_root(tracer):
    root = tracer.start_root("run", "workflow")
    orphanless = tracer.start("x", "compute")
    tracer.finish(orphanless)
    tracer.finish_root(root)
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["x"].parent_id == spans["run"].span_id


def test_scope_binding_parents_by_namespace(tracer):
    root = tracer.start_root("run", "workflow")
    step = tracer.start("download", "step", parent=root)
    tracer.bind_scope("ns-download", step)
    pod = tracer.start("pod-1", "queueing",
                       parent=tracer.scope_parent("ns-download"))
    other = tracer.start("pod-2", "queueing",
                         parent=tracer.scope_parent("ns-unknown"))
    for s in (pod, other, step):
        tracer.finish(s)
    tracer.unbind_scope("ns-download")
    tracer.finish_root(root)
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["pod-1"].parent_id == spans["download"].span_id
    # Unknown namespaces fall back to the root span.
    assert spans["pod-2"].parent_id == spans["run"].span_id


def test_context_manager_records_error_status(tracer):
    root = tracer.start_root("run", "workflow")
    with pytest.raises(ValueError):
        with tracer.span("boom", "compute", parent=root):
            raise ValueError("nope")
    tracer.finish_root(root)
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["boom"].status == "error"
    assert spans["run"].status == "ok"


def test_finish_root_sweeps_unfinished_spans(tracer):
    root = tracer.start_root("run", "workflow")
    dangling = tracer.start("dangling", "compute", parent=root)
    assert dangling.duration == 0.0  # unfinished spans report zero
    tracer.finish_root(root)
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["dangling"].status == "unfinished"
    assert spans["dangling"].end == spans["run"].end
    assert validate_spans(tracer.finished_spans()) == []


def test_finish_is_idempotent(tracer):
    root = tracer.start_root("run", "workflow")
    s = tracer.start("once", "compute", parent=root)
    tracer.finish(s)
    first_end = s.end
    tracer.finish(s)
    assert s.end == first_end
    tracer.finish_root(root)
    assert [x.name for x in tracer.finished_spans()].count("once") == 1


def test_validate_spans_flags_orphans_and_overflow():
    a = Span(name="root", category="workflow", span_id=1,
             parent_id=None, start=0.0, end=10.0)
    orphan = Span(name="lost", category="compute", span_id=2,
                  parent_id=99, start=1.0, end=2.0)
    overflow = Span(name="late", category="compute", span_id=3,
                    parent_id=1, start=5.0, end=15.0)
    problems = validate_spans([a, orphan, overflow])
    assert any("orphan" in p for p in problems)
    assert any("#3" in p for p in problems)
    assert validate_spans([a]) == []


def test_to_dict_round_trips_schema(tracer):
    root = tracer.start_root("run", "workflow", attributes={"workflow": "w"})
    tracer.finish_root(root)
    d = root.to_dict()
    assert d["name"] == "run"
    assert d["category"] == "workflow"
    assert d["parent_id"] is None
    assert d["attributes"] == {"workflow": "w"}
    assert d["end"] >= d["start"]


class TestLayerOverlap:
    """layer_overlap: seconds two layers spent running simultaneously."""

    @staticmethod
    def _span(name, category, start, end, span_id, parent_id=0):
        from repro.tracing import Span

        return Span(name=name, category=category, span_id=span_id,
                    parent_id=parent_id, start=start, end=end)

    def _root(self, start=0.0, end=100.0):
        from repro.tracing import Span

        return Span(name="run", category="workflow", span_id=0,
                    parent_id=None, start=start, end=end)

    def test_disjoint_layers_have_zero_overlap(self):
        from repro.tracing import layer_overlap

        root = self._root()
        spans = [
            root,
            self._span("c", "compute", 0.0, 10.0, 1),
            self._span("t", "transfer", 10.0, 20.0, 2),
        ]
        assert layer_overlap(spans, root) == 0.0

    def test_partial_overlap_measured_exactly(self):
        from repro.tracing import layer_overlap

        root = self._root()
        spans = [
            root,
            self._span("c", "compute", 0.0, 30.0, 1),
            self._span("t", "transfer", 20.0, 50.0, 2),
        ]
        assert layer_overlap(spans, root) == pytest.approx(10.0)

    def test_multiple_spans_union_not_double_counted(self):
        from repro.tracing import layer_overlap

        root = self._root()
        spans = [
            root,
            self._span("c1", "compute", 0.0, 40.0, 1),
            self._span("c2", "compute", 10.0, 30.0, 2),  # nested in c1
            self._span("t1", "transfer", 20.0, 60.0, 3),
        ]
        # compute covers [0,40], transfer [20,60] -> overlap [20,40].
        assert layer_overlap(spans, root) == pytest.approx(20.0)

    def test_clipped_to_root_window_and_unfinished_skipped(self):
        from repro.tracing import layer_overlap

        root = self._root(start=0.0, end=25.0)
        spans = [
            root,
            self._span("c", "compute", 0.0, 100.0, 1),
            self._span("t", "transfer", 20.0, 100.0, 2),
            self._span("u", "transfer", 0.0, None, 3),  # unfinished
        ]
        assert layer_overlap(spans, root) == pytest.approx(5.0)

    def test_custom_layer_pair(self):
        from repro.tracing import layer_overlap

        root = self._root()
        spans = [
            root,
            self._span("s", "scheduling", 0.0, 10.0, 1),
            self._span("q", "queueing", 5.0, 10.0, 2),
        ]
        assert layer_overlap(spans, root, "scheduling", "queueing") == (
            pytest.approx(5.0)
        )
