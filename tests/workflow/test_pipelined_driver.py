"""Tests for transfer/compute pipelining: StreamChannel + overlap mode.

Covers the stream primitive in isolation, the driver's overlap launch
rule, failure semantics (retry supersession, permanent breakage), and
the checkpoint/resume contract under a mid-overlap kill — the inverted
completion order (consumer done, producer still streaming) that only
pipelining can produce must resume to identical final artifacts.
"""

import numpy as np
import pytest

from repro.errors import StreamBrokenError
from repro.sim.environment import Environment
from repro.testbed import build_nautilus_testbed
from repro.workflow import (
    END,
    StreamChannel,
    Workflow,
    WorkflowCheckpoint,
    WorkflowDriver,
    build_connect_workflow,
)
from repro.workflow.step import StepContext, WorkflowStep


# ---------------------------------------------------------------------------
# StreamChannel unit tests (bare sim kernel, no testbed)
# ---------------------------------------------------------------------------


@pytest.fixture
def env():
    return Environment()


def _drive(env, gen):
    """Run a consumer generator to completion; return its value."""
    box = {}

    def wrapper():
        box["value"] = yield from gen
        if False:  # pragma: no cover - make wrapper a generator
            yield

    proc = env.process(wrapper())
    env.run(until=proc)
    return box["value"]


class TestStreamChannel:
    def test_items_in_order_then_end(self, env):
        chan = StreamChannel(env, "producer")

        def producer():
            yield env.timeout(1.0)
            chan.put("a")
            yield env.timeout(1.0)
            chan.put("b")
            chan.close()

        env.process(producer())

        def consumer():
            got = []
            index = 0
            while True:
                item = yield from chan.next_item(index)
                if item is END:
                    return got
                got.append(item)
                index += 1

        assert _drive(env, consumer()) == ["a", "b"]

    def test_milestone_payload_and_default(self, env):
        chan = StreamChannel(env, "producer")

        def producer():
            yield env.timeout(2.0)
            chan.mark("ready", {"n": 3})
            chan.close()

        env.process(producer())
        payload = _drive(env, chan.wait_milestone("ready"))
        assert payload == {"n": 3}
        # Clean close without the milestone -> default.
        assert _drive(env, chan.wait_milestone("absent", default="fb")) == "fb"

    def test_error_close_raises_stream_broken(self, env):
        chan = StreamChannel(env, "producer")

        def producer():
            yield env.timeout(1.0)
            chan.close(error="boom")

        env.process(producer())

        def consumer():
            try:
                yield from chan.wait_milestone("ready")
            except StreamBrokenError as exc:
                return ("broken", exc.producer)
            return ("ok", None)

        assert _drive(env, consumer()) == ("broken", "producer")

    def test_supersession_moves_blocked_consumers(self, env):
        first = StreamChannel(env, "producer")
        second = StreamChannel(env, "producer")

        def producer():
            yield env.timeout(1.0)
            first.supersede(second)   # the retry attempt takes over
            yield env.timeout(1.0)
            second.mark("ready", 42)
            second.close()

        env.process(producer())
        # Consumer waits on the ORIGINAL channel, follows the link.
        assert _drive(env, first.wait_milestone("ready")) == 42

    def test_put_on_closed_stream_rejected(self, env):
        chan = StreamChannel(env, "producer")
        chan.close()
        with pytest.raises(StreamBrokenError):
            chan.put("late")


# ---------------------------------------------------------------------------
# Driver overlap mode on synthetic steps
# ---------------------------------------------------------------------------


class StreamingProducer(WorkflowStep):
    """Marks "content-ready" at t+5, keeps transferring until t+50."""

    streams_output = True
    default_params = {"content_at": 5.0, "finish_at": 50.0, "fail_once": False}

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "producer")
        super().__init__(**kwargs)
        self.attempts = 0

    def execute(self, ctx: StepContext):
        self.attempts += 1
        stream = ctx.stream_out()
        yield ctx.env.timeout(float(ctx.params["content_at"]))
        if ctx.params["fail_once"] and self.attempts == 1:
            raise RuntimeError("transfer flapped")
        if stream is not None:
            stream.mark("content-ready", {"attempt": self.attempts})
        yield ctx.env.timeout(
            float(ctx.params["finish_at"]) - float(ctx.params["content_at"])
        )
        ctx.report.artifacts["attempt"] = self.attempts


class StreamingConsumer(WorkflowStep):
    """Starts on launch, waits for content, computes for 25s."""

    stream_inputs = ("producer",)
    default_params = {"compute_s": 25.0}

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "consumer")
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        ctx.report.artifacts["started_at"] = ctx.env.now
        chan = ctx.stream_in("producer")
        if chan is not None:
            payload = yield from chan.wait_milestone("content-ready",
                                                     default=None)
        else:
            payload = None
        content = (
            payload if payload is not None
            else ctx.artifacts.get("producer", {})
        )
        ctx.report.artifacts["content_attempt"] = (
            content.get("attempt") if content else None
        )
        yield ctx.env.timeout(float(ctx.params["compute_s"]))
        ctx.report.artifacts["finished_at"] = ctx.env.now


def _pipeline_workflow(**producer_params):
    producer = StreamingProducer(params=producer_params, max_retries=1,
                                 retry_delay_s=2.0)
    consumer = StreamingConsumer().after("producer")
    return Workflow("pipeline", [producer, consumer])


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=3, scale=0.0001)


class TestOverlapDriver:
    def test_barrier_vs_overlap_makespan(self):
        # Barrier: 50 + 25 = 75.  Overlap: consumer starts at 0, waits
        # for content at t=5, computes to t=30; producer bounds at t=50.
        barrier = WorkflowDriver(build_nautilus_testbed(seed=3, scale=0.0001)).run(
            _pipeline_workflow(), overlap=False
        )
        overlap = WorkflowDriver(build_nautilus_testbed(seed=3, scale=0.0001)).run(
            _pipeline_workflow(), overlap=True
        )
        assert barrier.succeeded and overlap.succeeded
        assert barrier.total_duration_s == pytest.approx(75.0)
        assert overlap.total_duration_s == pytest.approx(50.0)
        # The consumer finished BEFORE its producer — only overlap can.
        c, p = overlap.step("consumer"), overlap.step("producer")
        assert c.end_time < p.end_time
        assert overlap.step("consumer").artifacts["content_attempt"] == 1

    def test_overlap_off_by_default_consumer_waits(self, testbed):
        report = WorkflowDriver(testbed).run(_pipeline_workflow())
        assert report.step("consumer").start_time == pytest.approx(50.0)
        # Barrier-mode consumers see no stream and fall back to the
        # completed producer's artifacts — same content, later start.
        assert report.step("consumer").artifacts["content_attempt"] == 1

    def test_producer_retry_supersedes_stream(self, testbed):
        report = WorkflowDriver(testbed).run(
            _pipeline_workflow(fail_once=True), overlap=True
        )
        assert report.succeeded
        assert report.step("producer").retries == 1
        # The consumer transparently re-waited on the retry attempt's
        # channel and consumed ITS milestone.
        assert report.step("consumer").artifacts["content_attempt"] == 2

    def test_producer_permanent_failure_breaks_consumer(self, testbed):
        producer = StreamingProducer(params={"fail_once": True})  # no retries
        consumer = StreamingConsumer().after("producer")
        report = WorkflowDriver(testbed).run(
            Workflow("pipeline", [producer, consumer]), overlap=True
        )
        assert not report.succeeded
        assert "StreamBrokenError" in report.step("consumer").error


class TestMidOverlapKillResume:
    def test_resume_replays_only_unfinished_steps(self):
        """Kill while the producer is still streaming but the consumer
        already finished; resume must replay only the producer and end
        with artifacts identical to an uninterrupted run."""
        reference = WorkflowDriver(
            build_nautilus_testbed(seed=3, scale=0.0001)
        ).run(_pipeline_workflow(), overlap=True)

        ckpt = WorkflowCheckpoint("pipeline")
        killed = WorkflowDriver(
            build_nautilus_testbed(seed=3, scale=0.0001)
        ).run(
            _pipeline_workflow(), overlap=True, checkpoint=ckpt,
            deadline_s=40.0,  # consumer done at 30, producer runs to 50
        )
        assert not killed.succeeded
        assert ckpt.completed() == {"consumer"}

        resumed = WorkflowDriver(
            build_nautilus_testbed(seed=3, scale=0.0001)
        ).run(_pipeline_workflow(), overlap=True, resume_from=ckpt)
        assert resumed.succeeded
        assert resumed.step("consumer").resumed
        assert not resumed.step("producer").resumed

        def final_artifacts(report):
            return {
                s.name: {
                    k: v for k, v in s.to_dict()["artifacts"].items()
                    # Timestamps legitimately differ across a resume
                    # (the resumed run replays from t=0).
                    if k not in ("started_at", "finished_at")
                }
                for s in report.steps
            }

        assert final_artifacts(resumed) == final_artifacts(reference)


# ---------------------------------------------------------------------------
# The real CONNECT chain, pipelined
# ---------------------------------------------------------------------------


CONNECT_OVERRIDES = {
    "training": {
        "train_timesteps": 24,
        "real_train_steps": 10,
        "real_train_timesteps": 8,
    },
    "inference": {"real_test_timesteps": 6, "real_shards": 2},
}


class TestConnectOverlap:
    @pytest.fixture(scope="class")
    def both_runs(self):
        out = {}
        for overlap in (False, True):
            tb = build_nautilus_testbed(seed=42, scale=0.002)
            wf = build_connect_workflow(tb, overrides=CONNECT_OVERRIDES)
            out[overlap] = WorkflowDriver(tb).run(wf, overlap=overlap)
        return out

    def test_both_modes_succeed(self, both_runs):
        assert both_runs[False].succeeded
        assert both_runs[True].succeeded

    def test_overlap_shrinks_makespan(self, both_runs):
        assert (
            both_runs[True].total_duration_s
            < both_runs[False].total_duration_s
        )
        # Training launched while the download was still running.
        training = both_runs[True].step("training")
        download = both_runs[True].step("download")
        assert training.start_time < download.end_time

    def test_artifacts_identical_across_modes(self, both_runs):
        a = {s.name: s.to_dict()["artifacts"] for s in both_runs[False].steps}
        b = {s.name: s.to_dict()["artifacts"] for s in both_runs[True].steps}
        assert a == b

    def test_real_ml_scores_preserved(self, both_runs):
        for report in both_runs.values():
            inference = report.step("inference")
            assert "voxel_f1" in inference.artifacts
