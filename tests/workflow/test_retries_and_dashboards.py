"""Tests for step-level retries, dashboards, and background traffic."""

import pytest

from repro.netsim.background import BackgroundTraffic
from repro.testbed import build_nautilus_testbed
from repro.viz.dashboards import build_cluster_dashboard, build_workflow_dashboard
from repro.workflow import Workflow, WorkflowDriver
from repro.workflow.step import StepContext, WorkflowStep


class FlakyStep(WorkflowStep):
    """Fails the first N executions, then succeeds."""

    default_params = {"failures": 2, "duration": 5.0}

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.attempts = 0

    def execute(self, ctx: StepContext):
        self.attempts += 1
        yield ctx.env.timeout(float(ctx.params["duration"]))
        if self.attempts <= int(ctx.params["failures"]):
            raise RuntimeError(f"flaky failure #{self.attempts}")
        ctx.report.artifacts["attempts"] = self.attempts


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=1, scale=0.0001)


class TestStepRetries:
    def test_retries_until_success(self, testbed):
        step = FlakyStep(name="flaky", max_retries=3, retry_delay_s=10.0)
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        assert report.succeeded
        s = report.steps[0]
        assert s.artifacts["attempts"] == 3
        assert s.retries == 2
        # Duration includes the two retry delays.
        assert s.duration_s >= 3 * 5.0 + 2 * 10.0

    def test_exhausted_retries_fail_step(self, testbed):
        step = FlakyStep(name="flaky", max_retries=1,
                         params={"failures": 5})
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        assert not report.succeeded
        assert "flaky failure" in report.steps[0].error

    def test_zero_retries_default(self, testbed):
        step = FlakyStep(name="flaky", params={"failures": 1})
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        assert not report.succeeded
        assert step.attempts == 1

    def test_retry_events_recorded(self, testbed):
        step = FlakyStep(name="flaky", max_retries=2, retry_delay_s=1.0)
        WorkflowDriver(testbed).run(Workflow("w", [step]))
        retry_events = [
            e for e in testbed.cluster.events if e.reason == "Retrying"
        ]
        assert len(retry_events) == 2

    def test_negative_retry_settings_rejected(self):
        with pytest.raises(Exception):
            FlakyStep(name="x", max_retries=-1)


class TestDashboards:
    def test_cluster_dashboard_renders_live_metrics(self, testbed):
        testbed.env.run(until=60)  # a few scrapes
        dash = build_cluster_dashboard(testbed)
        out = dash.render()
        assert "CPU allocated" in out
        assert "Ceph bytes stored" in out
        assert "(no data)" not in out.split("THREDDS")[0]  # node panels live

    def test_workflow_dashboard_after_run(self, testbed):
        from repro.workflow import build_connect_workflow

        report = WorkflowDriver(testbed).run(
            build_connect_workflow(testbed, real_ml=False)
        )
        assert report.succeeded
        out = build_workflow_dashboard(testbed).render()
        assert "Step 1 worker CPU" in out
        assert "Step 3 GPU busy" in out
        # Stat panel shows the downloaded volume.
        assert "Step 1 bytes downloaded" in out


class TestBackgroundTraffic:
    def test_traffic_flows_and_is_deterministic(self, testbed):
        bg = BackgroundTraffic(
            testbed.env, testbed.flowsim, testbed.topology,
            mean_interarrival=10.0, seed=3,
        )
        testbed.env.run(until=500)
        bg.stop()
        assert bg.flows_started > 10
        assert bg.bytes_offered > 0

        tb2 = build_nautilus_testbed(seed=1, scale=0.0001)
        bg2 = BackgroundTraffic(
            tb2.env, tb2.flowsim, tb2.topology,
            mean_interarrival=10.0, seed=3,
        )
        tb2.env.run(until=500)
        assert bg2.flows_started == bg.flows_started
        assert bg2.bytes_offered == pytest.approx(bg.bytes_offered)

    def test_workflow_survives_contention(self, testbed):
        """The 100G core insulates the workflow: it completes under
        heavy cross traffic (the archive egress is the bottleneck)."""
        from repro.workflow import DownloadStep

        BackgroundTraffic(
            testbed.env, testbed.flowsim, testbed.topology,
            mean_interarrival=5.0, seed=4,
        )
        report = WorkflowDriver(testbed).run(
            Workflow("contended", [DownloadStep()])
        )
        assert report.succeeded

    def test_validation(self, testbed):
        with pytest.raises(ValueError):
            BackgroundTraffic(
                testbed.env, testbed.flowsim, testbed.topology,
                mean_interarrival=0,
            )
        with pytest.raises(ValueError):
            BackgroundTraffic(
                testbed.env, testbed.flowsim, testbed.topology,
                flow_bytes=(0, 10),
            )
