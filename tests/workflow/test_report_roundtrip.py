"""Stable report serialization: to_dict/from_dict shared with persistence."""

import dataclasses

import numpy as np
import pytest

from repro.workflow.driver import REPORT_FORMAT_VERSION, WorkflowReport
from repro.workflow.persistence import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.workflow.step import StepReport, sanitize_artifact_value


def _step_report(name="download", **overrides):
    kwargs = dict(
        name=name,
        start_time=10.0,
        end_time=250.0,
        pods=4,
        cpus=8.0,
        gpus=0,
        memory_bytes=2.5e9,
        data_processed_bytes=1.2e11,
        succeeded=True,
        retries=1,
        artifacts={"files_downloaded": 112},
    )
    kwargs.update(overrides)
    return StepReport(**kwargs)


def _workflow_report():
    return WorkflowReport(
        workflow_name="connect",
        steps=[
            _step_report("download"),
            _step_report("training", start_time=250.0, end_time=900.0,
                         gpus=1, retries=0),
        ],
        total_duration_s=900.0,
    )


def test_step_report_round_trips():
    original = _step_report()
    restored = StepReport.from_dict(original.to_dict())
    assert restored == original


def test_step_report_from_dict_defaults_optional_fields():
    d = _step_report().to_dict()
    del d["retries"]
    del d["resumed"]
    restored = StepReport.from_dict(d)
    assert restored.retries == 0
    assert restored.resumed is False


def test_workflow_report_round_trips():
    original = _workflow_report()
    d = original.to_dict()
    assert d["format_version"] == REPORT_FORMAT_VERSION
    restored = WorkflowReport.from_dict(d)
    assert restored.workflow_name == original.workflow_name
    assert restored.total_duration_s == original.total_duration_s
    assert restored.succeeded is True
    assert restored.steps == original.steps


def test_workflow_report_rejects_unknown_format_version():
    d = _workflow_report().to_dict()
    d["format_version"] = REPORT_FORMAT_VERSION + 1
    with pytest.raises(ValueError):
        WorkflowReport.from_dict(d)


def test_persistence_helpers_delegate_to_methods():
    report = _workflow_report()
    assert report_to_dict(report) == report.to_dict()
    assert report_from_dict(report.to_dict()).steps == report.steps


def test_save_and_load_report(tmp_path):
    report = _workflow_report()
    path = tmp_path / "report.json"
    save_report(report, path)
    loaded = load_report(path)
    assert loaded.steps == report.steps
    assert loaded.total_duration_s == report.total_duration_s


def test_sanitize_artifact_value_handles_arrays_and_scalars():
    assert sanitize_artifact_value(3) == 3
    assert sanitize_artifact_value(np.int64(3)) == 3
    assert sanitize_artifact_value(np.float32(1.5)) == pytest.approx(1.5)
    out = sanitize_artifact_value(np.zeros((2, 3), dtype=np.int32))
    assert out["__array_summary__"]
    assert out["shape"] == [2, 3]
    nested = sanitize_artifact_value({"a": [np.int64(1), 2]})
    assert nested == {"a": [1, 2]}


def test_report_dict_is_json_safe_with_array_artifacts():
    import json

    step = _step_report(artifacts={"labels": np.ones((4, 4))})
    report = WorkflowReport(
        workflow_name="w", steps=[step], total_duration_s=1.0
    )
    d = report_to_dict(report)
    json.dumps(d)  # must not raise
    # Live runs carry ndarray artifacts that serialize to summaries, so
    # the stable invariant is dict-level idempotence, not object equality.
    assert report_to_dict(report_from_dict(d)) == d


def test_obs_reports_facade_exposes_the_same_objects():
    from repro.obs import reports as obs_reports

    assert obs_reports.WorkflowReport is WorkflowReport
    assert obs_reports.StepReport is StepReport
    assert obs_reports.save_report is save_report
