"""Tests for step timeouts, workflow checkpoints, and resumed runs."""

import pytest

from repro.errors import WorkflowError
from repro.testbed import build_nautilus_testbed
from repro.workflow import Workflow, WorkflowCheckpoint, WorkflowDriver
from repro.workflow.step import StepContext, WorkflowStep


class CountingStep(WorkflowStep):
    """Sleeps, records an artifact, and counts real executions."""

    default_params = {"duration": 10.0}

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.calls = 0

    def execute(self, ctx: StepContext):
        self.calls += 1
        yield ctx.env.timeout(float(ctx.params["duration"]))
        ctx.report.artifacts["calls"] = self.calls
        ctx.report.artifacts["finished_at"] = ctx.env.now


class HangingFirstStep(CountingStep):
    """Hangs forever on its first execution, then behaves."""

    def execute(self, ctx: StepContext):
        self.calls += 1
        if self.calls == 1:
            yield ctx.env.timeout(1e9)
        yield from super().execute(ctx)
        self.calls -= 1  # super() counted a second time


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=1, scale=0.0001)


def _chain(*steps):
    """Linearise the steps: each depends on the previous one."""
    for prev, step in zip(steps, steps[1:]):
        step.after(prev.name)
    return Workflow("chain", list(steps))


class TestStepTimeout:
    def test_hung_step_times_out_and_retries(self, testbed):
        step = HangingFirstStep(
            name="hang", timeout_s=50.0, max_retries=1, retry_delay_s=5.0
        )
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        assert report.succeeded
        s = report.steps[0]
        assert s.retries == 1
        # Timeout window + retry delay + the honest second run.
        assert s.duration_s == pytest.approx(50.0 + 5.0 + 10.0)

    def test_timeout_without_retries_fails_step(self, testbed):
        step = HangingFirstStep(name="hang", timeout_s=20.0)
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        assert not report.succeeded
        assert "exceeded timeout" in report.steps[0].error


class TestCheckpointing:
    def test_deadline_kill_leaves_completed_prefix(self, testbed):
        steps = [
            CountingStep(name=n, params={"duration": 10.0}) for n in "abc"
        ]
        ckpt = WorkflowCheckpoint("chain")
        report = WorkflowDriver(testbed).run(
            _chain(*steps), checkpoint=ckpt, deadline_s=15.0
        )
        # Only "a" fit inside the deadline.
        assert not report.succeeded
        assert ckpt.completed() == {"a"}
        assert ckpt.report_copy("a").succeeded

    def test_resume_skips_completed_steps(self, testbed):
        steps = [
            CountingStep(name=n, params={"duration": 10.0}) for n in "abc"
        ]
        ckpt = WorkflowCheckpoint("chain")
        WorkflowDriver(testbed).run(
            _chain(*steps), checkpoint=ckpt, deadline_s=15.0
        )
        assert steps[0].calls == 1

        tb2 = build_nautilus_testbed(seed=1, scale=0.0001)
        steps2 = [
            CountingStep(name=n, params={"duration": 10.0}) for n in "abc"
        ]
        report = WorkflowDriver(tb2).run(_chain(*steps2), resume_from=ckpt)
        assert report.succeeded
        assert steps2[0].calls == 0  # not re-executed
        assert steps2[1].calls == 1
        assert steps2[2].calls == 1
        by_name = {s.name: s for s in report.steps}
        assert by_name["a"].resumed
        assert not by_name["b"].resumed
        # The resumed step's artifacts carried over verbatim.
        assert by_name["a"].artifacts["calls"] == 1

    def test_resume_round_trips_through_json(self, testbed, tmp_path):
        steps = [
            CountingStep(name=n, params={"duration": 10.0}) for n in "ab"
        ]
        path = tmp_path / "ckpt.json"
        ckpt = WorkflowCheckpoint("chain", path=path)
        WorkflowDriver(testbed).run(
            _chain(*steps), checkpoint=ckpt, deadline_s=15.0
        )
        loaded = WorkflowCheckpoint.load(path)
        assert loaded.workflow_name == "chain"
        assert loaded.completed() == {"a"}

        tb2 = build_nautilus_testbed(seed=1, scale=0.0001)
        steps2 = [
            CountingStep(name=n, params={"duration": 10.0}) for n in "ab"
        ]
        report = WorkflowDriver(tb2).run(_chain(*steps2), resume_from=loaded)
        assert report.succeeded
        assert steps2[0].calls == 0

    def test_workflow_name_mismatch_rejected(self, testbed):
        ckpt = WorkflowCheckpoint("other-workflow")
        with pytest.raises(WorkflowError):
            WorkflowDriver(testbed).run(
                Workflow("chain", [CountingStep(name="a")]),
                resume_from=ckpt,
            )

    def test_recording_failed_step_rejected(self, testbed):
        step = HangingFirstStep(name="hang", timeout_s=20.0)
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        ckpt = WorkflowCheckpoint("w")
        with pytest.raises(WorkflowError):
            ckpt.record(report.steps[0], {})

    def test_retries_and_resumed_survive_report_persistence(
        self, testbed, tmp_path
    ):
        from repro.workflow import load_report, save_report

        step = HangingFirstStep(
            name="hang", timeout_s=50.0, max_retries=1, retry_delay_s=5.0
        )
        report = WorkflowDriver(testbed).run(Workflow("w", [step]))
        path = tmp_path / "report.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.steps[0].retries == 1
        assert loaded.steps[0].resumed is False
