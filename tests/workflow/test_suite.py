"""Tests for the multi-seed robustness suite."""

import pytest

from repro.errors import ValidationError
from repro.workflow import build_connect_workflow
from repro.workflow.suite import run_robustness_suite


@pytest.fixture(scope="module")
def robustness():
    return run_robustness_suite(
        lambda tb: build_connect_workflow(tb, real_ml=False),
        seeds=(41, 42, 43),
        scale=0.001,
    )


class TestRobustness:
    def test_all_seeds_succeed(self, robustness):
        assert robustness.all_succeeded
        assert len(robustness.reports) == 3

    def test_structural_columns_seed_invariant(self, robustness):
        """Table I's pods/CPUs/GPUs columns must not depend on the seed."""
        for stats in robustness.steps.values():
            assert stats.structurally_stable, stats.name
        assert robustness.steps["download"].pods == {14}
        assert robustness.steps["inference"].gpus == {50}

    def test_training_duration_spread_matches_jitter(self, robustness):
        """Training time varies only through the ±5% GPU-speed jitter."""
        assert robustness.steps["training"].cv <= 0.06

    def test_render(self, robustness):
        out = robustness.render()
        assert "Robustness across seeds" in out
        assert "download" in out

    def test_seed_validation(self):
        with pytest.raises(ValidationError):
            run_robustness_suite(lambda tb: None, seeds=(1,))
        with pytest.raises(ValidationError):
            run_robustness_suite(lambda tb: None, seeds=(1, 1))
