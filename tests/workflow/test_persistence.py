"""Tests for workflow-report JSON persistence."""

import numpy as np
import pytest

from repro.testbed import build_nautilus_testbed
from repro.viz import render_table1
from repro.workflow import Workflow, WorkflowDriver
from repro.workflow.persistence import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from tests.workflow.test_workflow_core import SleepStep


class ArtifactStep(SleepStep):
    """Produces every artifact flavour the sanitizer must handle."""

    def execute(self, ctx):
        yield ctx.env.timeout(1.0)
        ctx.report.data_processed_bytes = 42.0
        ctx.report.artifacts.update(
            {
                "number": 7,
                "np_number": np.float64(2.5),
                "text": "hello",
                "nested": {"a": [1, 2, {"b": None}], "t": (3, 4)},
                "array": np.arange(12).reshape(3, 4),
                "weird": object(),
            }
        )


@pytest.fixture
def report():
    testbed = build_nautilus_testbed(seed=3, scale=0.0001)
    return WorkflowDriver(testbed).run(Workflow("persist", [ArtifactStep(name="s")]))


class TestSerialization:
    def test_roundtrip_core_fields(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        back = load_report(path)
        assert back.workflow_name == report.workflow_name
        assert back.succeeded == report.succeeded
        assert back.total_duration_s == pytest.approx(report.total_duration_s)
        step, orig = back.steps[0], report.steps[0]
        assert step.duration_s == pytest.approx(orig.duration_s)
        assert step.data_processed_bytes == orig.data_processed_bytes

    def test_scalar_artifacts_roundtrip_exactly(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        art = load_report(path).steps[0].artifacts
        assert art["number"] == 7
        assert art["np_number"] == 2.5
        assert art["text"] == "hello"
        assert art["nested"]["a"][2]["b"] is None
        assert art["nested"]["t"] == [3, 4]  # tuples become lists

    def test_arrays_summarized_not_dropped(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        summary = load_report(path).steps[0].artifacts["array"]
        assert summary["__array_summary__"] is True
        assert summary["shape"] == [3, 4]
        assert summary["nonzero"] == 11

    def test_unserializable_objects_described(self, report):
        data = report_to_dict(report)
        weird = data["steps"][0]["artifacts"]["weird"]
        assert weird["__type__"] == "object"

    def test_reloaded_report_renders_table(self, report, tmp_path):
        path = tmp_path / "r.json"
        save_report(report, path)
        table = render_table1(load_report(path))
        assert "Table I" in table

    def test_version_guard(self, report):
        data = report_to_dict(report)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            report_from_dict(data)
