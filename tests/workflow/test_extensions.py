"""Tests for the §III-E extension steps and the testbed builder."""

import numpy as np
import pytest

from repro.data.merra import MerraGenerator
from repro.errors import ValidationError
from repro.ml import FFNConfig
from repro.testbed import build_nautilus_testbed
from repro.workflow import (
    DistributedPreprocessing,
    DistributedTraining,
    HyperparameterSweep,
)
from repro.workflow.driver import run_single_step
from repro.workflow.extensions import allreduce_seconds, data_parallel_train


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=3, scale=0.001)


class TestTestbedBuilder:
    def test_paper_shaped_inventory(self):
        tb = build_nautilus_testbed(seed=1, scale=0.001)
        fig1 = tb.figure1_summary()
        assert fig1["prp_sites"] >= 20
        assert fig1["storage_petabytes"] >= 1.0  # "over a petabyte" (§II)
        assert fig1["gpus"] >= 50  # enough for step 3
        assert fig1["wan_link_speeds_gbps"] == [10.0, 40.0, 100.0]

    def test_scale_controls_archive(self):
        tb = build_nautilus_testbed(seed=1, scale=0.01)
        assert len(tb.archive) == round(112_249 * 0.01)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_nautilus_testbed(scale=0.0)
        with pytest.raises(ValueError):
            build_nautilus_testbed(scale=2.0)

    def test_cluster_nodes_attached_to_network(self):
        tb = build_nautilus_testbed(seed=1, scale=0.001)
        for name in tb.cluster.nodes:
            assert name in tb.topology.hosts

    def test_deterministic_generators(self):
        a = build_nautilus_testbed(seed=9, scale=0.001)
        b = build_nautilus_testbed(seed=9, scale=0.001)
        np.testing.assert_array_equal(
            a.merra_generator().ivt_field(3), b.merra_generator().ivt_field(3)
        )


class TestDistributedPreprocessing:
    def test_parallel_beats_serial_model(self, testbed):
        # Enough bytes that conversion dwarfs pod startup overhead.
        step = DistributedPreprocessing(
            params={"n_workers": 8, "bytes_to_convert": 64e9}
        )
        report = run_single_step(testbed, step)
        assert report.succeeded
        serial = report.artifacts["serial_equivalent_s"]
        assert report.duration_s < serial
        # Outputs landed on CephFS.
        assert report.artifacts["protobuf_objects"]
        for name in report.artifacts["protobuf_objects"]:
            assert testbed.cephfs.exists(name)

    def test_single_worker_approximates_serial(self, testbed):
        step = DistributedPreprocessing(
            params={"n_workers": 1, "bytes_to_convert": 64e9}
        )
        report = run_single_step(testbed, step, workflow_name="serial")
        serial = report.artifacts["serial_equivalent_s"]
        # One worker still pays the serial conversion time (plus I/O).
        assert report.duration_s >= serial


class TestDistributedTraining:
    def test_allreduce_cost_model(self):
        assert allreduce_seconds(1e9, 1) == 0.0
        two = allreduce_seconds(1e9, 2)
        eight = allreduce_seconds(1e9, 8)
        assert two > 0
        assert eight > two  # (K-1)/K grows with K
        assert eight < 2 * two  # but saturates below 2x

    def test_data_parallel_train_learns(self):
        gen = MerraGenerator(seed=5)
        volume = gen.ivt_volume(0, 12)
        labels = gen.label_volume(0, 12)
        config = FFNConfig(fov=(5, 5, 5), filters=4, modules=1, seed=5)
        _, loss = data_parallel_train(
            config, volume, labels, n_workers=4, steps=30, seed=5
        )
        assert loss < 1.0

    def test_data_parallel_validates_workers(self):
        gen = MerraGenerator(seed=5)
        config = FFNConfig(fov=(5, 5, 5), filters=4, modules=1)
        with pytest.raises(ValidationError):
            data_parallel_train(
                config, gen.ivt_volume(0, 8), gen.label_volume(0, 8), n_workers=0
            )

    def test_step_runs_and_scales_down(self, testbed):
        step = DistributedTraining(
            params={"n_replicas": 4, "real_ml": False}
        )
        report = run_single_step(testbed, step)
        assert report.succeeded
        assert report.gpus == 4  # peak concurrent replicas
        art = report.artifacts
        assert art["modelled_total_seconds"] == pytest.approx(
            art["compute_seconds"] + art["comm_seconds"]
        )
        assert "svc.cluster.local" in art["service_hostname"]
        # ReplicaSet was deleted: no tf-train pods left running.
        from repro.cluster import PodPhase

        running = testbed.cluster.list_pods(phase=PodPhase.RUNNING)
        assert not [p for p in running if "tf-train" in p.meta.name]

    def test_more_replicas_less_compute_time(self, testbed):
        small = DistributedTraining(
            name="dt-2", params={"n_replicas": 2, "real_ml": False}
        )
        big = DistributedTraining(
            name="dt-8", params={"n_replicas": 8, "real_ml": False}
        )
        r2 = run_single_step(testbed, small, workflow_name="w2")
        r8 = run_single_step(testbed, big, workflow_name="w8")
        assert r8.artifacts["compute_seconds"] < r2.artifacts["compute_seconds"]
        assert r8.artifacts["comm_seconds"] > r2.artifacts["comm_seconds"]


class TestHyperparameterSweep:
    def test_sweep_finds_best_params(self, testbed):
        step = HyperparameterSweep(
            params={
                "param_grid": (
                    {"lr": 0.1, "filters": 4},
                    {"lr": 0.1, "filters": 6},
                ),
                "n_workers": 2,
                "train_steps": 10,
            }
        )
        report = run_single_step(testbed, step)
        assert report.succeeded
        art = report.artifacts
        assert art["trials"] == 2
        losses = [r["validation_loss"] for r in art["results"]]
        assert art["best_validation_loss"] == min(losses)
        assert art["best_params"] in [r["params"] for r in art["results"]]

    def test_split_windows_do_not_overlap(self, testbed):
        """§III-E.3: 'it is important to separate training and test data'."""
        step = HyperparameterSweep()
        t0, t1 = step.params["train_window"]
        v0, v1 = step.params["validation_window"]
        assert t1 <= v0 or v1 <= t0
