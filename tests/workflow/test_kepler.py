"""Tests for the Kepler-style interactive execution session."""

import pytest

from repro.errors import StepFailedError, ValidationError
from repro.testbed import build_nautilus_testbed
from repro.workflow import Workflow
from repro.workflow.kepler import KeplerSession
from tests.workflow.test_workflow_core import SleepStep


@pytest.fixture
def session():
    testbed = build_nautilus_testbed(seed=2, scale=0.0001)
    wf = Workflow(
        "chain",
        [
            SleepStep(name="a", params={"duration": 5.0}),
            SleepStep(name="b", params={"duration": 3.0}).after("a"),
            SleepStep(name="c", params={"duration": 2.0}).after("b"),
        ],
    )
    return KeplerSession(testbed, wf)


class TestStepExecution:
    def test_run_single_step(self, session):
        report = session.run_step("a")
        assert report.succeeded
        assert session.cells["a"].status == "ran"
        assert session.cells["a"].runs == 1

    def test_dependency_enforced(self, session):
        with pytest.raises(ValidationError, match="needs"):
            session.run_step("b")

    def test_run_until_runs_prefix(self, session):
        reports = session.run_until("b")
        assert [r.name for r in reports] == ["a", "b"]
        assert session.cells["c"].status == "idle"

    def test_artifacts_flow_between_interactive_runs(self, session):
        session.run_step("a")
        assert session.artifacts["a"]["out"] == 5.0

    def test_param_override_applies(self, session):
        report = session.run_step("a", duration=1.0)
        assert report.duration_s == pytest.approx(1.0)

    def test_unknown_step(self, session):
        with pytest.raises(ValidationError):
            session.run_step("ghost")

    def test_failed_step_raises_and_marks_cell(self, session):
        with pytest.raises(StepFailedError):
            session.run_step("a", fail=True)
        assert session.cells["a"].status == "failed"
        # Recoverable: fix the parameter and rerun.
        session.workflow.steps["a"].params["fail"] = False
        session.rerun("a")
        assert session.cells["a"].status == "ran"


class TestStaleness:
    def test_rerun_marks_dependents_stale(self, session):
        session.run_until("c")
        assert all(c.status == "ran" for c in session.cells.values())
        session.rerun("a")
        assert session.cells["a"].status == "ran"
        assert session.cells["b"].status == "stale"
        assert session.cells["c"].status == "stale"

    def test_measurement_history_accumulates(self, session):
        session.run_step("a")
        session.rerun("a", duration=2.0)
        durations = session.ppods.trend("a")
        assert len(durations) == 2
        assert durations[1] == pytest.approx(2.0)


class TestCollaboration:
    def test_annotations_on_board(self, session):
        session.annotate("a", "alice", "tune chunk size next run")
        board = session.board()
        assert "alice" in board and "chunk size" in board

    def test_annotate_unknown_step(self, session):
        with pytest.raises(ValidationError):
            session.annotate("ghost", "bob", "x")

    def test_board_shows_status_and_runs(self, session):
        session.run_step("a")
        board = session.board()
        assert "ran" in board
        assert "runs=1" in board
