"""Tests for concurrent execution of independent DAG branches."""

import pytest

from repro.testbed import build_nautilus_testbed
from repro.workflow import Workflow, WorkflowDriver
from tests.workflow.test_workflow_core import SleepStep


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=1, scale=0.0001)


class TestParallelBranches:
    def test_independent_steps_overlap(self, testbed):
        wf = Workflow(
            "par",
            [
                SleepStep(name="a", params={"duration": 10.0}),
                SleepStep(name="b", params={"duration": 10.0}),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        assert report.succeeded
        # Both ran concurrently: total ~10s, not ~20s.
        assert report.total_duration_s == pytest.approx(10.0)
        a, b = report.step("a"), report.step("b")
        assert a.start_time == b.start_time

    def test_diamond_dag_ordering(self, testbed):
        wf = Workflow(
            "diamond",
            [
                SleepStep(name="src", params={"duration": 3.0}),
                SleepStep(name="left", params={"duration": 5.0}).after("src"),
                SleepStep(name="right", params={"duration": 7.0}).after("src"),
                SleepStep(name="sink", params={"duration": 1.0}).after(
                    "left", "right"
                ),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        assert report.succeeded
        src = report.step("src")
        left, right = report.step("left"), report.step("right")
        sink = report.step("sink")
        # Branches start together after src; sink waits for the slower one.
        assert left.start_time == right.start_time == src.end_time
        assert sink.start_time == right.end_time  # right is slower (7s)
        assert report.total_duration_s == pytest.approx(3.0 + 7.0 + 1.0)

    def test_failure_skips_only_dependents(self, testbed):
        wf = Workflow(
            "mixed",
            [
                SleepStep(name="bad", params={"duration": 2.0, "fail": True}),
                SleepStep(name="child-of-bad", params={"duration": 1.0}).after(
                    "bad"
                ),
                SleepStep(name="independent", params={"duration": 8.0}),
            ],
        )
        report = WorkflowDriver(testbed).run(wf, fail_fast=False)
        names = {s.name for s in report.steps}
        assert "independent" in names
        assert report.step("independent").succeeded
        # The dependent of the failed step never ran.
        assert "child-of-bad" not in names
        assert not report.succeeded

    def test_fail_fast_lets_running_siblings_finish(self, testbed):
        wf = Workflow(
            "ff",
            [
                SleepStep(name="bad", params={"duration": 2.0, "fail": True}),
                SleepStep(name="slow", params={"duration": 6.0}),
            ],
        )
        report = WorkflowDriver(testbed).run(wf, fail_fast=True)
        # The already-running sibling completed cleanly before the stop.
        assert report.step("slow").succeeded
        assert report.step("slow").duration_s == pytest.approx(6.0)

    def test_linear_chain_still_sequential(self, testbed):
        wf = Workflow(
            "chain",
            [
                SleepStep(name="a", params={"duration": 2.0}),
                SleepStep(name="b", params={"duration": 2.0}).after("a"),
                SleepStep(name="c", params={"duration": 2.0}).after("b"),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        assert report.total_duration_s == pytest.approx(6.0)
        assert report.step("b").start_time == report.step("a").end_time
