"""Tests for Workflow/driver mechanics and the PPoDS layer."""

import pytest

from repro.errors import ValidationError
from repro.testbed import build_nautilus_testbed
from repro.workflow import PPoDSSession, Workflow, WorkflowDriver
from repro.workflow.step import StepContext, StepReport, WorkflowStep


class SleepStep(WorkflowStep):
    """Test step: sleeps in sim time, optionally failing."""

    default_params = {"duration": 10.0, "fail": False}

    def execute(self, ctx: StepContext):
        yield ctx.env.timeout(float(ctx.params["duration"]))
        if ctx.params["fail"]:
            raise RuntimeError("step exploded")
        ctx.report.data_processed_bytes = 42.0
        ctx.report.artifacts["out"] = ctx.params["duration"]


class ConsumerStep(WorkflowStep):
    """Reads the upstream artifact to prove artifact plumbing works."""

    def execute(self, ctx: StepContext):
        upstream = ctx.artifacts["first"]["out"]
        yield ctx.env.timeout(1.0)
        ctx.report.artifacts["seen"] = upstream


@pytest.fixture
def testbed():
    return build_nautilus_testbed(seed=1, scale=0.0001)


class TestWorkflowDag:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Workflow("w", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Workflow("w", [SleepStep(name="a"), SleepStep(name="a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValidationError):
            Workflow("w", [SleepStep(name="a").after("ghost")])

    def test_cycle_rejected(self):
        a = SleepStep(name="a").after("b")
        b = SleepStep(name="b").after("a")
        with pytest.raises(ValidationError):
            Workflow("w", [a, b])

    def test_topological_order(self):
        a = SleepStep(name="a").after("c")
        b = SleepStep(name="b").after("a")
        c = SleepStep(name="c")
        wf = Workflow("w", [a, b, c])
        order = wf.order
        assert order.index("c") < order.index("a") < order.index("b")

    def test_describe_mentions_steps(self):
        wf = Workflow("w", [SleepStep(name="a"), SleepStep(name="b").after("a")])
        text = wf.describe()
        assert "a" in text and "(after a)" in text


class TestDriver:
    def test_single_step_report(self, testbed):
        wf = Workflow("w", [SleepStep(name="only")])
        report = WorkflowDriver(testbed).run(wf)
        assert report.succeeded
        step = report.step("only")
        assert step.duration_s == pytest.approx(10.0)
        assert step.data_processed_bytes == 42.0

    def test_steps_run_sequentially(self, testbed):
        wf = Workflow(
            "w",
            [
                SleepStep(name="first", params={"duration": 5.0}),
                SleepStep(name="second", params={"duration": 7.0}).after("first"),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        first, second = report.steps
        assert second.start_time >= first.end_time
        assert report.total_duration_s == pytest.approx(12.0)

    def test_artifacts_flow_downstream(self, testbed):
        wf = Workflow(
            "w",
            [
                SleepStep(name="first", params={"duration": 3.0}),
                ConsumerStep(name="consumer").after("first"),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        assert report.step("consumer").artifacts["seen"] == 3.0

    def test_failing_step_recorded_and_stops_workflow(self, testbed):
        wf = Workflow(
            "w",
            [
                SleepStep(name="bad", params={"fail": True}),
                SleepStep(name="never").after("bad"),
            ],
        )
        report = WorkflowDriver(testbed).run(wf)
        assert not report.succeeded
        assert "step exploded" in report.step("bad").error
        # The dependent step never ran.
        assert len(report.steps) == 1

    def test_fail_fast_off_continues(self, testbed):
        wf = Workflow(
            "w",
            [
                SleepStep(name="bad", params={"fail": True}),
                SleepStep(name="later"),
            ],
        )
        report = WorkflowDriver(testbed).run(wf, fail_fast=False)
        assert len(report.steps) == 2
        assert report.step("later").succeeded

    def test_namespace_created_per_step(self, testbed):
        wf = Workflow("wf", [SleepStep(name="s1")])
        WorkflowDriver(testbed).run(wf)
        assert "wf-s1" in testbed.cluster.namespaces

    def test_table_shape(self, testbed):
        wf = Workflow("w", [SleepStep(name="a")])
        report = WorkflowDriver(testbed).run(wf)
        table = report.table()
        assert set(table) == {"a"}
        assert {"pods", "cpus", "gpus", "total_time"} <= set(table["a"])

    def test_unknown_step_lookup(self, testbed):
        report = WorkflowDriver(testbed).run(Workflow("w", [SleepStep(name="a")]))
        with pytest.raises(KeyError):
            report.step("ghost")


class TestPPoDS:
    @pytest.fixture
    def session(self):
        wf = Workflow("w", [SleepStep(name="a"), SleepStep(name="b").after("a")])
        return PPoDSSession(wf)

    def _report(self, name, duration=10.0, data=1.0):
        report = StepReport(name=name)
        report.start_time = 0.0
        report.end_time = duration
        report.data_processed_bytes = data
        report.succeeded = True
        return report

    def test_assign_sets_owner_and_status(self, session):
        session.assign("a", "alice")
        assert session.plan["a"].owner == "alice"
        assert session.plan["a"].status == "developing"

    def test_bad_status_rejected(self, session):
        with pytest.raises(ValidationError):
            session.set_status("a", "amazing")

    def test_unknown_step_rejected(self, session):
        with pytest.raises(ValidationError):
            session.assign("ghost", "bob")

    def test_plan_view_lists_steps(self, session):
        session.assign("a", "alice")
        view = session.plan_view()
        assert "alice" in view and "b" in view

    def test_step_test_passes_on_latest_measurement(self, session):
        session.add_test("a-has-data", "a", lambda r: r.data_processed_bytes > 0)
        assert session.run_tests() == {"a-has-data": False}  # no run yet
        session.record(self._report("a"))
        assert session.run_tests() == {"a-has-data": True}

    def test_step_test_exception_is_failure(self, session):
        session.add_test("boom", "a", lambda r: 1 / 0)
        session.record(self._report("a"))
        assert session.run_tests()["boom"] is False

    def test_trend_and_improvement(self, session):
        session.record(self._report("a", duration=100.0))
        session.record(self._report("a", duration=60.0))
        assert session.trend("a") == [100.0, 60.0]
        assert session.improvement("a") == pytest.approx(0.4)

    def test_improvement_needs_two_runs(self, session):
        session.record(self._report("a"))
        assert session.improvement("a") is None

    def test_record_unknown_step_rejected(self, session):
        with pytest.raises(ValidationError):
            session.record(self._report("ghost"))
