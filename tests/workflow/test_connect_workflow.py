"""Integration tests: the 4-step CONNECT workflow on a small testbed.

These run the complete paper pipeline (download -> train -> infer ->
visualize) at 0.2% archive scale with the real ML path enabled, and
assert both the orchestration outcomes and the Table-I resource shape.
"""

import numpy as np
import pytest

from repro.testbed import build_nautilus_testbed
from repro.workflow import WorkflowDriver, build_connect_workflow


@pytest.fixture(scope="module")
def executed():
    """One full workflow execution shared by this module's assertions."""
    testbed = build_nautilus_testbed(seed=42, scale=0.002)
    workflow = build_connect_workflow(testbed)
    report = WorkflowDriver(testbed).run(workflow)
    return testbed, report


class TestWorkflowOutcome:
    def test_all_steps_succeed(self, executed):
        _, report = executed
        assert report.succeeded
        assert [s.name for s in report.steps] == [
            "download",
            "training",
            "inference",
            "visualization",
        ]

    def test_table1_pod_row(self, executed):
        """Paper Table I: pods 14 / 1 / 50 / 1."""
        _, report = executed
        assert [s.pods for s in report.steps] == [14, 1, 50, 1]

    def test_table1_cpu_row(self, executed):
        """Paper Table I: CPUs 42 / 1 / 50 / 1."""
        _, report = executed
        assert [round(s.cpus) for s in report.steps] == [42, 1, 50, 1]

    def test_table1_gpu_row(self, executed):
        """Paper Table I: GPUs 0 / 1 / 50 / 1."""
        _, report = executed
        assert [s.gpus for s in report.steps] == [0, 1, 50, 1]

    def test_table1_memory_row(self, executed):
        """Paper Table I: memory 225 / 14.8 / 600 / 12 GB."""
        _, report = executed
        mems = [round(s.memory_bytes / 1e9, 1) for s in report.steps]
        assert mems == [225.0, 14.8, 600.0, 12.0]

    def test_visualization_reports_na(self, executed):
        _, report = executed
        assert report.step("visualization").total_time_cell() == "NA"

    def test_training_time_matches_paper_at_any_scale(self, executed):
        """The training volume is fixed (30 days), so step 2 should take
        ~306 paper-minutes even on a small archive."""
        _, report = executed
        minutes = report.step("training").duration_minutes
        assert 290 <= minutes <= 330

    def test_data_processed_scales_with_archive(self, executed):
        testbed, report = executed
        expected = testbed.archive.total_subset_bytes
        assert report.step("download").data_processed_bytes == pytest.approx(
            expected, rel=0.01
        )
        assert report.step("inference").data_processed_bytes == pytest.approx(
            expected, rel=0.01
        )


class TestWorkflowArtifacts:
    def test_download_populates_object_store(self, executed):
        testbed, report = executed
        merged = report.step("download").artifacts["merged_objects"]
        assert merged
        for name in merged:
            assert testbed.ceph.exists("merra", name)

    def test_queue_fully_drained(self, executed):
        _, report = executed
        art = report.step("download").artifacts
        assert art["queue_acked"] >= 1
        assert art["files_downloaded"] == 224  # 0.2% of 112,249

    def test_model_checkpoint_saved(self, executed):
        testbed, report = executed
        model_object = report.step("training").artifacts["model_object"]
        ref = testbed.ceph.stat("models", str(model_object))
        assert ref.payload is not None  # real weights stored

    def test_training_consumes_store_content(self, executed):
        """Step 2 trains on the IVT volume step 1 materialized into
        CephFS — real arrays flowed through the shared store."""
        testbed, report = executed
        download = report.step("download").artifacts
        training = report.step("training").artifacts
        assert training["volume_source"] == "cephfs"
        assert testbed.cephfs.exists(str(download["content_volume_path"]))
        # And the training example was re-serialized as a protobuf blob.
        from repro.data.tfrecord import TFRecordReader

        blob = testbed.cephfs.read_payload(str(training["protobuf_path"]))
        (example,) = TFRecordReader(blob).read_all()
        assert example.volume.shape[0] == download["content_timesteps"]
        assert example.meta["nt"] == download["content_timesteps"]

    def test_real_ffn_learns(self, executed):
        _, report = executed
        training_report = report.step("training").artifacts["training_report"]
        assert training_report.improved
        assert training_report.final_loss < training_report.initial_loss * 0.7

    def test_inference_segmentation_quality(self, executed):
        """The trained FFN must genuinely segment held-out rivers."""
        _, report = executed
        art = report.step("inference").artifacts
        assert art["voxel_recall"] > 0.5
        assert art["voxel_f1"] > 0.4

    def test_inference_shards_cover_archive(self, executed):
        testbed, report = executed
        art = report.step("inference").artifacts
        assert art["n_shards"] == 50
        assert len(art["result_objects"]) == 50
        assert art["voxels_total"] == 576 * 361 * len(testbed.archive)

    def test_visualization_object_statistics(self, executed):
        _, report = executed
        art = report.step("visualization").artifacts
        assert art["n_objects"] >= 1
        assert art["mean_lifetime_steps"] > 1.0  # objects persist in time

    def test_label_volume_is_binary_objects(self, executed):
        _, report = executed
        labels = report.step("inference").artifacts["label_volume"]
        assert labels.dtype == np.int32
        assert labels.max() >= 1


class TestMonitoringDuringWorkflow:
    def test_per_worker_download_series_exist(self, executed):
        """Figure 3 needs one CPU series per download worker."""
        testbed, _ = executed
        series = testbed.registry.all_series("step1_worker_cpu")
        workers = {dict(ts.labels).get("worker") for ts in series}
        assert len(workers) >= 10

    def test_gpu_busy_series_for_inference(self, executed):
        testbed, _ = executed
        series = testbed.registry.all_series("step3_gpu_busy")
        assert len(series) == 50

    def test_node_gauges_sampled(self, executed):
        testbed, _ = executed
        assert testbed.registry.all_series("node_cpu_allocated")
        assert testbed.sampler.scrapes > 10


class TestWorkflowVariants:
    def test_no_subset_downloads_full_bytes(self):
        testbed = build_nautilus_testbed(seed=7, scale=0.0005)
        workflow = build_connect_workflow(testbed, subset=False, real_ml=False)
        report = WorkflowDriver(testbed).run(workflow)
        assert report.succeeded
        assert report.step("download").data_processed_bytes == pytest.approx(
            testbed.archive.total_full_bytes, rel=0.01
        )

    def test_fewer_gpus_runs_longer(self):
        results = {}
        for n_gpus in (10, 50):
            testbed = build_nautilus_testbed(seed=7, scale=0.0005)
            workflow = build_connect_workflow(
                testbed, n_gpus=n_gpus, real_ml=False
            )
            report = WorkflowDriver(testbed).run(workflow)
            assert report.succeeded
            results[n_gpus] = report.step("inference").duration_s
        # Fixed overheads (image pull, model fetch) dilute the ideal 5x.
        assert results[10] > 2.0 * results[50]
