"""DAG validation edge cases: cycle paths, names in errors, ordering.

Satellite coverage for the static-analysis PR: `Workflow` construction
errors carry the workflow name and—for cycles—the full offending path,
deterministically regardless of step declaration order.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.workflow import Workflow, WorkflowStep


def _step(name: str, **kwargs) -> WorkflowStep:
    return WorkflowStep(name, **kwargs)


# ------------------------------------------------------------------ cycles


def test_cycle_error_names_full_path():
    a = _step("a").after("c")
    b = _step("b").after("a")
    c = _step("c").after("b")
    with pytest.raises(ValidationError) as excinfo:
        Workflow("w", [a, b, c])
    message = str(excinfo.value)
    assert "workflow 'w'" in message
    # Path follows dependency edges (a depends on c, c on b, b on a),
    # rotated to start at the lexicographically smallest member.
    assert "dependency cycle: a -> c -> b -> a" in message


def test_cycle_error_deterministic_across_declaration_order():
    def build(order):
        steps = {
            "a": _step("a").after("c"),
            "b": _step("b").after("a"),
            "c": _step("c").after("b"),
        }
        with pytest.raises(ValidationError) as excinfo:
            Workflow("w", [steps[n] for n in order])
        return str(excinfo.value)

    messages = {
        build(order)
        for order in (("a", "b", "c"), ("c", "b", "a"), ("b", "c", "a"))
    }
    # Same graph -> same quoted cycle, whatever the insertion order.
    assert len(messages) == 1
    assert "a -> c -> b -> a" in messages.pop()


def test_two_step_cycle_path():
    a = _step("a").after("b")
    b = _step("b").after("a")
    with pytest.raises(ValidationError, match=r"a -> b -> a"):
        Workflow("pair", [a, b])


def test_self_dependency_rejected():
    a = _step("a").after("a")
    with pytest.raises(ValidationError) as excinfo:
        Workflow("selfie", [a])
    message = str(excinfo.value)
    assert "workflow 'selfie'" in message
    assert "step 'a' depends on itself" in message


# ----------------------------------------------------------- name hygiene


def test_duplicate_step_names_rejected_with_workflow_name():
    with pytest.raises(ValidationError) as excinfo:
        Workflow("dupes", [_step("x"), _step("y"), _step("x")])
    message = str(excinfo.value)
    assert "workflow 'dupes'" in message
    assert "'x'" in message


def test_empty_workflow_rejected_with_workflow_name():
    with pytest.raises(ValidationError, match=r"workflow 'void'"):
        Workflow("void", [])


def test_unknown_dependency_rejected_with_workflow_name():
    a = _step("a").after("ghost")
    with pytest.raises(ValidationError) as excinfo:
        Workflow("haunted", [a])
    message = str(excinfo.value)
    assert "workflow 'haunted'" in message
    assert "unknown step 'ghost'" in message


# -------------------------------------------------------------- structure


def test_single_step_workflow():
    wf = Workflow("solo", [_step("only")])
    assert wf.order == ["only"]
    assert len(wf) == 1


def test_fan_out_fan_in_order_is_declaration_stable():
    def build():
        a = _step("a")
        b = _step("b").after("a")
        c = _step("c").after("a")
        d = _step("d").after("b", "c")
        return Workflow("diamond", [a, b, c, d])

    order = build().order
    assert order == ["a", "b", "c", "d"]
    # Rebuilding yields the identical order (no set/dict nondeterminism).
    assert build().order == order


def test_fan_out_declared_backwards_still_topological():
    d = _step("d").after("b", "c")
    c = _step("c").after("a")
    b = _step("b").after("a")
    a = _step("a")
    order = Workflow("diamond", [d, c, b, a]).order
    assert order.index("a") < order.index("b")
    assert order.index("a") < order.index("c")
    assert order.index("d") == 3


# ------------------------------------------------------- advisory findings


def test_construction_keeps_advisory_findings():
    network = _step("fetch", image="chase-ci/thredds-downloader:1.2")
    crunch = _step("crunch").after("fetch")
    wf = Workflow("advice", [network, crunch])
    codes = {f.code for f in wf.lint_findings}
    # fetch has no timeout/retry budget -> DAG005 warning, kept (not raised)
    assert "DAG005" in codes


def test_clean_workflow_has_no_findings():
    a = _step("a", max_retries=1, timeout_s=60.0)
    b = _step("b").after("a")
    wf = Workflow("clean", [a, b])
    assert wf.lint_findings == []
