"""Property tests for the retry backoff policy.

The whole resilience layer leans on three guarantees: backoff delays
never exceed the configured ceiling, the deterministic cap grows
monotonically with the attempt number, and a seeded generator replays
the exact same delay sequence — so fault schedules (and hence whole
chaos runs) are reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransferError
from repro.transfer import RetryPolicy

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay_s=st.floats(min_value=0.01, max_value=10.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_s=st.floats(min_value=10.0, max_value=600.0),
)


class TestBackoffBounded:
    @settings(max_examples=50, deadline=None)
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**31))
    def test_delay_never_exceeds_ceiling(self, policy, seed):
        rng = np.random.default_rng(seed)
        prev = None
        for attempt in range(policy.max_attempts):
            delay = policy.backoff(attempt, rng, prev)
            assert 0.0 <= delay <= policy.max_delay_s
            prev = delay

    @settings(max_examples=50, deadline=None)
    @given(policy=policies)
    def test_cap_is_monotone_in_attempt(self, policy):
        caps = [policy.backoff_cap(a) for a in range(16)]
        assert caps == sorted(caps)
        assert all(c <= policy.max_delay_s for c in caps)

    @settings(max_examples=30, deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=0, max_value=10))
    def test_no_rng_means_deterministic_cap(self, policy, attempt):
        # Without an rng the policy degrades to pure exponential backoff.
        assert policy.backoff(attempt, None) == policy.backoff_cap(attempt)


class TestBackoffDeterministic:
    @settings(max_examples=25, deadline=None)
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_sequence(self, policy, seed):
        def sequence():
            rng = np.random.default_rng(seed)
            prev = None
            out = []
            for attempt in range(policy.max_attempts):
                prev = policy.backoff(attempt, rng, prev)
                out.append(prev)
            return out

        assert sequence() == sequence()

    def test_different_seeds_differ(self):
        policy = RetryPolicy(max_attempts=8)

        def sequence(seed):
            rng = np.random.default_rng(seed)
            prev = None
            out = []
            for attempt in range(policy.max_attempts):
                prev = policy.backoff(attempt, rng, prev)
                out.append(prev)
            return out

        assert sequence(1) != sequence(2)


class TestDecorrelatedJitter:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        prev=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_jitter_window(self, seed, prev):
        # AWS decorrelated jitter: uniform in [base, prev * 3], clamped.
        policy = RetryPolicy(base_delay_s=0.5, max_delay_s=30.0)
        rng = np.random.default_rng(seed)
        delay = policy.backoff(3, rng, prev_delay_s=prev)
        assert policy.base_delay_s <= delay or delay == policy.max_delay_s
        assert delay <= min(policy.max_delay_s, max(policy.base_delay_s, prev * 3))


class TestValidation:
    def test_rejects_bad_settings(self):
        with pytest.raises(TransferError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(TransferError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(TransferError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(TransferError):
            RetryPolicy(max_delay_s=0.0)
        with pytest.raises(TransferError):
            RetryPolicy(jitter="bogus")
