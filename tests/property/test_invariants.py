"""Property-based invariants across substrates (hypothesis).

These pin the load-bearing guarantees the workflow layer builds on:
nodes are never over-allocated, jobs complete exactly, flows conserve
bytes and never oversubscribe capacity, and the reliable queue delivers
exactly-once under crashes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, JobSpec, PodPhase, fiona8_node_spec
from repro.errors import QueueEmptyError
from repro.netsim.flows import CapacityResource, FlowSimulator
from repro.sim import Environment
from repro.transfer import RedisQueue
from tests.cluster.conftest import sleeper_spec


class TestClusterInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),  # cpu
                st.integers(min_value=0, max_value=4),  # gpu
                st.floats(min_value=1.0, max_value=100.0),  # duration
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_nodes_never_overallocated(self, data):
        env = Environment()
        cluster = Cluster(env)
        for i in range(3):
            cluster.add_node(fiona8_node_spec(f"n{i}"))

        violations = []

        def check(_pod, _old, _new):
            for node in cluster.nodes.values():
                if (
                    node.allocated.cpu > node.capacity.cpu + 1e-9
                    or node.allocated.gpu > node.capacity.gpu
                    or node.allocated.memory > node.capacity.memory
                ):
                    violations.append(repr(node))

        cluster.phase_hooks.append(check)
        for i, (cpu, gpu, duration) in enumerate(data):
            cluster.create_pod(
                f"p{i}", sleeper_spec(duration=duration, cpu=cpu, gpu=gpu)
            )
        env.run()
        assert violations == []
        # Every feasible pod completed; all resources returned.
        for node in cluster.nodes.values():
            assert node.allocated.cpu == pytest.approx(0.0)
            assert node.allocated.gpu == 0
        for pod in cluster.list_pods():
            assert pod.phase is PodPhase.SUCCEEDED

    @settings(max_examples=15, deadline=None)
    @given(
        completions=st.integers(min_value=1, max_value=12),
        parallelism=st.integers(min_value=1, max_value=12),
    )
    def test_job_exact_completions_and_parallelism_cap(
        self, completions, parallelism
    ):
        env = Environment()
        cluster = Cluster(env)
        for i in range(4):
            cluster.add_node(fiona8_node_spec(f"n{i}"))
        peak = [0]

        def track(_pod, _old, _new):
            running = len(cluster.list_pods(phase=PodPhase.RUNNING))
            peak[0] = max(peak[0], running)

        cluster.phase_hooks.append(track)
        job = cluster.create_job(
            "j",
            JobSpec(
                template=lambda i: sleeper_spec(duration=5 + i),
                completions=completions,
                parallelism=parallelism,
            ),
        )
        env.run()
        assert job.is_complete
        assert job.succeeded_indices == set(range(completions))
        assert peak[0] <= parallelism


class TestFlowInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        caps=st.lists(
            st.floats(min_value=10.0, max_value=1e4), min_size=1, max_size=3
        ),
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=10
        ),
        seed=st.integers(0, 1000),
    )
    def test_all_flows_complete_and_bytes_conserved(self, caps, sizes, seed):
        env = Environment()
        sim = FlowSimulator(env)
        resources = [CapacityResource(f"r{i}", c) for i, c in enumerate(caps)]
        rng = np.random.default_rng(seed)
        events = []
        for size in sizes:
            k = int(rng.integers(1, len(resources) + 1))
            picks = list(rng.choice(len(resources), size=k, replace=False))
            events.append(
                sim.transfer([resources[i] for i in picks], size)
            )
        env.run(until=env.all_of(events))
        assert sim.completed_count == len(sizes)
        assert sim.bytes_moved == pytest.approx(sum(sizes))
        assert sim.active_flows == 0

    @settings(max_examples=15, deadline=None)
    @given(
        n_flows=st.integers(min_value=2, max_value=12),
        cap=st.floats(min_value=100.0, max_value=1e4),
    )
    def test_shared_link_never_oversubscribed_mid_run(self, n_flows, cap):
        env = Environment()
        sim = FlowSimulator(env)
        link = CapacityResource("l", cap)
        for i in range(n_flows):
            sim.transfer([link], cap * (i + 1))  # staggered sizes

        samples = []

        def sampler(env):
            while True:
                yield env.timeout(0.5)
                samples.append(sim.sample_rates([link])["l"])

        env.process(sampler(env))
        env.run(until=n_flows * (n_flows + 1) / 2 + 2)
        assert samples
        assert all(rate <= cap * (1 + 1e-9) for rate in samples)
        # Work conservation while flows were active.
        active_samples = [r for r in samples if r > 0]
        assert all(r == pytest.approx(cap) for r in active_samples)


class TestQueueInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        n_messages=st.integers(min_value=1, max_value=40),
        crash_pattern=st.lists(st.booleans(), min_size=1, max_size=10),
        seed=st.integers(0, 100),
    )
    def test_exactly_once_under_crashes(self, n_messages, crash_pattern, seed):
        """Workers randomly crash mid-message; every message is acked
        exactly once in the end."""
        env = Environment()
        queue = RedisQueue(env)
        queue.push_all(range(n_messages))
        processed: list[int] = []
        rng = np.random.default_rng(seed)

        def worker(env, name, crashy):
            while True:
                try:
                    msg = queue.try_pop(name)
                except QueueEmptyError:
                    return
                yield env.timeout(1.0)
                if crashy and rng.random() < 0.3:
                    # Crash: lose everything held; the Job controller's
                    # replacement pod recovers it.
                    queue.recover(name)
                    return
                processed.append(msg.body)
                queue.ack(name, msg)

        generation = [0]

        def supervisor(env):
            """Respawn crashed workers until the queue drains."""
            while not queue.drained:
                procs = [
                    env.process(
                        worker(env, f"w{generation[0]}-{k}", crash_pattern[k % len(crash_pattern)]),
                        name=f"w{k}",
                    )
                    for k in range(3)
                ]
                generation[0] += 1
                yield env.all_of(procs)

        env.process(supervisor(env))
        env.run()
        assert sorted(processed) == list(range(n_messages))
        assert queue.acked_total == n_messages
        assert queue.drained
