"""The repro.obs facade and the deprecation shims behind it."""

import importlib
import warnings

import pytest

import repro.obs
import repro.obs.metrics
import repro.obs.reports
import repro.obs.tracing


def test_facade_exports_all_three_sides():
    # metrics side
    assert repro.obs.MetricRegistry is repro.obs.metrics.MetricRegistry
    assert repro.obs.Sampler is repro.obs.metrics.Sampler
    # tracing side
    assert repro.obs.Tracer is repro.obs.tracing.Tracer
    assert repro.obs.analyze_run is repro.obs.tracing.analyze_run
    # reports side
    assert repro.obs.WorkflowReport is repro.obs.reports.WorkflowReport
    assert repro.obs.WorkflowCheckpoint is repro.obs.reports.WorkflowCheckpoint
    for name in repro.obs.__all__:
        assert hasattr(repro.obs, name), name


def test_facade_matches_implementations():
    from repro.monitoring.metrics import MetricRegistry
    from repro.tracing import Tracer
    from repro.workflow.driver import WorkflowReport

    assert repro.obs.MetricRegistry is MetricRegistry
    assert repro.obs.Tracer is Tracer
    assert repro.obs.WorkflowReport is WorkflowReport


def test_facade_imports_are_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        importlib.reload(repro.obs.metrics)
        importlib.reload(repro.obs.tracing)
        importlib.reload(repro.obs.reports)


def test_old_monitoring_package_path_warns():
    import repro.monitoring

    with pytest.warns(DeprecationWarning, match="repro.obs.metrics"):
        registry_cls = repro.monitoring.MetricRegistry
    assert registry_cls is repro.obs.MetricRegistry
    with pytest.warns(DeprecationWarning):
        from repro.monitoring import Dashboard  # noqa: F401


def test_old_monitoring_names_all_resolve():
    import repro.monitoring

    with pytest.warns(DeprecationWarning):
        for name in repro.monitoring.__all__:
            assert getattr(repro.monitoring, name) is not None


def test_monitoring_submodule_imports_stay_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.monitoring.grafana import Dashboard  # noqa: F401
        from repro.monitoring.metrics import MetricRegistry  # noqa: F401
        import repro.monitoring.promql  # noqa: F401


def test_old_ml_metrics_path_warns():
    import repro.ml.metrics as old

    with pytest.warns(DeprecationWarning, match="segmetrics"):
        scores_cls = old.SegmentationScores
    from repro.ml.segmetrics import SegmentationScores

    assert scores_cls is SegmentationScores
    assert repro.obs.SegmentationScores is SegmentationScores


def test_unknown_attribute_still_raises():
    import repro.monitoring

    with pytest.raises(AttributeError):
        repro.monitoring.does_not_exist
    import repro.ml.metrics as old

    with pytest.raises(AttributeError):
        old.does_not_exist
