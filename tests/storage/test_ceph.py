"""Integration tests for the Ceph-like cluster and CephFS facade."""

import pytest

from repro.errors import (
    ConflictError,
    ObjectNotFoundError,
    StorageError,
)
from repro.netsim import FlowSimulator, Topology
from repro.sim import Environment
from repro.storage import CephCluster, CephFS

GB = 1e9


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def ceph(env):
    """A 6-OSD, 3-host cluster without network timing."""
    c = CephCluster(env)
    for i in range(6):
        c.add_osd(host=f"stor-{i % 3:02d}", capacity=10e12)
    c.create_pool("data", replication=3)
    return c


class TestSyncPath:
    def test_put_get_roundtrip(self, ceph):
        ceph.put_sync("data", "obj1", 5 * GB, payload={"kind": "test"})
        ref = ceph.get_sync("data", "obj1")
        assert ref.size == 5 * GB
        assert ref.payload == {"kind": "test"}

    def test_replicas_land_on_distinct_hosts(self, ceph):
        ceph.put_sync("data", "obj1", GB)
        holders = ceph.holders("data", "obj1")
        assert len(holders) == 3
        assert len({o.host for o in holders}) == 3

    def test_used_bytes_accounts_replication(self, ceph):
        ceph.put_sync("data", "obj1", GB)
        assert ceph.total_used() == pytest.approx(3 * GB)

    def test_overwrite_bumps_version_and_rebalances(self, ceph):
        ceph.put_sync("data", "k", GB)
        ref = ceph.put_sync("data", "k", 2 * GB)
        assert ref.version == 2
        assert ceph.total_used() == pytest.approx(6 * GB)

    def test_missing_object_raises(self, ceph):
        with pytest.raises(ObjectNotFoundError):
            ceph.get_sync("data", "ghost")

    def test_missing_pool_raises(self, ceph):
        with pytest.raises(ObjectNotFoundError):
            ceph.put_sync("nope", "k", 1)

    def test_duplicate_pool_rejected(self, ceph):
        with pytest.raises(ConflictError):
            ceph.create_pool("data")

    def test_delete_frees_space(self, ceph):
        ceph.put_sync("data", "k", GB)
        ceph.delete("data", "k")
        assert ceph.total_used() == 0
        assert not ceph.exists("data", "k")

    def test_list_keys_prefix(self, ceph):
        for name in ("a/1", "a/2", "b/1"):
            ceph.put_sync("data", name, 1)
        assert ceph.list_keys("data", prefix="a/") == ["a/1", "a/2"]

    def test_osd_full_rejected(self, env):
        ceph = CephCluster(env)
        for i in range(3):
            ceph.add_osd(host=f"h{i}", capacity=1 * GB)
        ceph.create_pool("data", replication=3)
        with pytest.raises(StorageError):
            ceph.put_sync("data", "big", 2 * GB)


class TestTimedPath:
    @pytest.fixture
    def timed(self, env):
        topo = Topology()
        topo.add_site("S")
        for host in ("client", "stor-00", "stor-01", "stor-02"):
            topo.attach_host(host, "S", nic_gbps=10.0)
        flows = FlowSimulator(env)
        ceph = CephCluster(env, flowsim=flows, topology=topo)
        for i in range(3):
            ceph.add_osd(host=f"stor-{i:02d}", capacity=10e12, disk_Bps=500e6)
        ceph.create_pool("data", replication=3)
        return ceph

    def test_put_takes_disk_limited_time(self, env, timed):
        """1 GB at 500 MB/s disk (slower than the 1.25 GB/s NIC): ~2s,
        but the client NIC carries 3 replicas at once -> 3GB/1.25GBps=2.4s."""
        done = timed.put("data", "k", 1 * GB, client_host="client")
        env.run(until=done)
        assert env.now == pytest.approx(2.4, rel=0.05)

    def test_get_served_by_primary(self, env, timed):
        env.run(until=timed.put("data", "k", 1 * GB, client_host="client"))
        start = env.now
        env.run(until=timed.get("data", "k", client_host="client"))
        # Single replica read: disk 500 MB/s is the bottleneck -> 2s.
        assert env.now - start == pytest.approx(2.0, rel=0.05)

    def test_parallel_puts_contend(self, env, timed):
        d1 = timed.put("data", "a", 1 * GB, client_host="client")
        d2 = timed.put("data", "b", 1 * GB, client_host="client")
        env.run(until=env.all_of([d1, d2]))
        # 6 GB total through one 1.25 GB/s client NIC: ~4.8s.
        assert env.now == pytest.approx(4.8, rel=0.1)


class TestFailureRecovery:
    def test_degraded_then_recovered(self, env, ceph):
        ceph.put_sync("data", "k", GB)
        victim = ceph.holders("data", "k")[0]
        ceph.fail_osd(victim.id)
        assert ceph.degraded_objects() == 1
        assert ceph.health()["status"] == "HEALTH_WARN"
        env.run()
        assert ceph.degraded_objects() == 0
        assert ceph.recovered_objects == 1

    def test_read_survives_single_osd_loss(self, env, ceph):
        ceph.put_sync("data", "k", GB, payload="precious")
        victim = ceph.holders("data", "k")[0]
        ceph.fail_osd(victim.id)
        assert ceph.get_sync("data", "k").payload == "precious"

    def test_object_lost_when_all_replicas_die(self, env, ceph):
        ceph.put_sync("data", "k", GB)
        for osd in list(ceph.holders("data", "k")):
            ceph.fail_osd(osd.id)
        env.run()
        assert ("data", "k") in ceph.lost_objects
        assert ceph.health()["status"] == "HEALTH_ERR"
        with pytest.raises(StorageError):
            ceph.get_sync("data", "k")

    def test_recovered_osd_rejoins_empty(self, env, ceph):
        ceph.put_sync("data", "k", GB)
        victim = ceph.holders("data", "k")[0]
        ceph.fail_osd(victim.id)
        env.run()
        ceph.recover_osd(victim.id)
        assert ceph.osds[victim.id].used == 0
        assert ceph.health()["status"] == "HEALTH_OK"

    def test_health_ok_initially(self, ceph):
        h = ceph.health()
        assert h["status"] == "HEALTH_OK"
        assert h["osds_up"] == 6


class TestCephFS:
    @pytest.fixture
    def fs(self, ceph):
        return CephFS(ceph)

    def test_write_read(self, fs):
        fs.write("/results/run1.nc", 100.0, payload=[1, 2, 3])
        assert fs.read("/results/run1.nc").payload == [1, 2, 3]
        assert fs.read_payload("results/run1.nc") == [1, 2, 3]

    def test_path_normalization(self, fs):
        fs.write("a//b/../c.txt", 1.0)
        assert fs.exists("/a/c.txt")

    def test_listdir(self, fs):
        fs.write("/data/x/1.nc", 1)
        fs.write("/data/x/2.nc", 1)
        fs.write("/data/y.nc", 1)
        assert fs.listdir("/data") == ["x", "y.nc"]
        assert fs.listdir("/data/x") == ["1.nc", "2.nc"]

    def test_du(self, fs):
        fs.write("/d/a", 10)
        fs.write("/d/b", 20)
        fs.write("/other", 5)
        assert fs.du("/d") == 30
        assert fs.du("/") == 35

    def test_remove(self, fs):
        fs.write("/f", 1)
        fs.remove("/f")
        assert not fs.exists("/f")

    def test_read_payload_missing(self, fs):
        fs.write("/meta-only", 1)
        with pytest.raises(ObjectNotFoundError):
            fs.read_payload("/meta-only")
