"""Tests for the S3 gateway and RBD block volumes."""

import pytest

from repro.errors import ConflictError, ObjectNotFoundError, StorageError
from repro.sim import Environment
from repro.storage import CephCluster
from repro.storage.rbd import EXTENT_BYTES, RBDPool
from repro.storage.s3 import MIN_PART_BYTES, S3Gateway

GB = 1e9


@pytest.fixture
def ceph():
    env = Environment()
    c = CephCluster(env)
    for i in range(6):
        c.add_osd(host=f"h{i % 3}", capacity=10e12)
    return c


@pytest.fixture
def s3(ceph):
    gw = S3Gateway(ceph)
    gw.create_bucket("merra")
    return gw


class TestS3Buckets:
    def test_create_and_list(self, s3):
        s3.create_bucket("results")
        assert s3.list_buckets() == ["merra", "results"]
        assert s3.bucket_exists("merra")
        assert not s3.bucket_exists("ghost")

    def test_duplicate_bucket_rejected(self, s3):
        with pytest.raises(ConflictError):
            s3.create_bucket("merra")

    def test_invalid_bucket_name(self, s3):
        with pytest.raises(StorageError):
            s3.create_bucket("a/b")
        with pytest.raises(StorageError):
            s3.create_bucket("")

    def test_missing_bucket_raises(self, s3):
        with pytest.raises(ObjectNotFoundError):
            s3.put_object("ghost", "k", 1)


class TestS3Objects:
    def test_put_get_head_roundtrip(self, s3):
        s3.put_object("merra", "a/file.nc4", 2 * GB, payload={"x": 1})
        ref = s3.get_object("merra", "a/file.nc4")
        assert ref.payload == {"x": 1}
        head = s3.head_object("merra", "a/file.nc4")
        assert head.size == 2 * GB
        assert head.etag

    def test_list_with_prefix(self, s3):
        for key in ("a/1", "a/2", "b/1"):
            s3.put_object("merra", key, 1)
        listed = s3.list_objects("merra", prefix="a/")
        assert [o.key for o in listed] == ["a/1", "a/2"]

    def test_delete(self, s3):
        s3.put_object("merra", "k", 1)
        s3.delete_object("merra", "k")
        with pytest.raises(ObjectNotFoundError):
            s3.get_object("merra", "k")

    def test_objects_replicated_in_ceph(self, s3, ceph):
        s3.put_object("merra", "k", GB)
        assert len(ceph.holders("s3-merra", "k")) == 3


class TestMultipart:
    def test_multipart_assembles_total_size(self, s3):
        upload = s3.create_multipart_upload("merra", "big.h5")
        upload.upload_part(1, 6 * MIN_PART_BYTES)
        upload.upload_part(2, 6 * MIN_PART_BYTES)
        upload.upload_part(3, 1024)  # small last part is fine
        obj = upload.complete()
        assert obj.size == 12 * MIN_PART_BYTES + 1024
        assert s3.head_object("merra", "big.h5").size == obj.size

    def test_out_of_order_parts(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        upload.upload_part(2, 100)
        upload.upload_part(1, 6 * MIN_PART_BYTES)
        obj = upload.complete()
        assert obj.size == 6 * MIN_PART_BYTES + 100

    def test_small_middle_part_rejected(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        upload.upload_part(1, 1024)  # too small and not last
        upload.upload_part(2, 6 * MIN_PART_BYTES)
        with pytest.raises(StorageError):
            upload.complete()

    def test_abort_discards(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        upload.upload_part(1, 6 * MIN_PART_BYTES)
        upload.abort()
        with pytest.raises(StorageError):
            upload.complete()
        assert s3.list_multipart_uploads() == []
        with pytest.raises(ObjectNotFoundError):
            s3.get_object("merra", "k")

    def test_empty_completion_rejected(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        with pytest.raises(StorageError):
            upload.complete()

    def test_bad_part_numbers(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        with pytest.raises(StorageError):
            upload.upload_part(0, 100)
        with pytest.raises(StorageError):
            upload.upload_part(10_001, 100)

    def test_closed_upload_rejects_parts(self, s3):
        upload = s3.create_multipart_upload("merra", "k")
        upload.upload_part(1, 6 * MIN_PART_BYTES)
        upload.complete()
        with pytest.raises(StorageError):
            upload.upload_part(2, 100)


class TestRBD:
    @pytest.fixture
    def rbd(self, ceph):
        return RBDPool(ceph)

    def test_thin_provisioning(self, rbd):
        image = rbd.create_image("vol1", 100 * EXTENT_BYTES)
        assert image.provisioned_extents == 0
        assert rbd.provisioned_bytes() == 0

    def test_write_backs_extents(self, rbd, ceph):
        rbd.create_image("vol1", 100 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        newly = rbd.write("vol1", 0, 2.5 * EXTENT_BYTES)
        assert newly == 3  # extents 0,1,2
        assert rbd.provisioned_bytes() == 3 * EXTENT_BYTES
        # Backing objects are replicated like any Ceph object.
        assert len(ceph.holders("rbd", "vol1/extent-00000000")) == 3

    def test_rewrite_does_not_reprovision(self, rbd):
        rbd.create_image("vol1", 10 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        assert rbd.write("vol1", 0, EXTENT_BYTES) == 1
        assert rbd.write("vol1", 0, EXTENT_BYTES) == 0

    def test_write_requires_claim(self, rbd):
        rbd.create_image("vol1", 10 * EXTENT_BYTES)
        with pytest.raises(StorageError):
            rbd.write("vol1", 0, 100)

    def test_rwo_exclusive_claim(self, rbd):
        rbd.create_image("vol1", 10 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        with pytest.raises(ConflictError):
            rbd.claim("vol1", "pod-2")
        rbd.release("vol1", "pod-1")
        rbd.claim("vol1", "pod-2")

    def test_out_of_bounds_write_rejected(self, rbd):
        rbd.create_image("vol1", 2 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        with pytest.raises(StorageError):
            rbd.write("vol1", EXTENT_BYTES, 2 * EXTENT_BYTES)

    def test_resize_grow_and_guard(self, rbd):
        rbd.create_image("vol1", 2 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        rbd.write("vol1", 0, 2 * EXTENT_BYTES)
        rbd.resize("vol1", 10 * EXTENT_BYTES)
        with pytest.raises(StorageError):
            rbd.resize("vol1", EXTENT_BYTES)

    def test_snapshot_bookkeeping(self, rbd):
        image = rbd.create_image("vol1", 10 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        rbd.write("vol1", 0, EXTENT_BYTES)
        rbd.snapshot("vol1", "before")
        rbd.write("vol1", 5 * EXTENT_BYTES, EXTENT_BYTES)
        assert image.snapshots["before"] == 1
        with pytest.raises(ConflictError):
            rbd.snapshot("vol1", "before")

    def test_remove_image_frees_objects(self, rbd, ceph):
        rbd.create_image("vol1", 10 * EXTENT_BYTES)
        rbd.claim("vol1", "pod-1")
        rbd.write("vol1", 0, 3 * EXTENT_BYTES)
        with pytest.raises(StorageError):
            rbd.remove_image("vol1")  # still claimed
        rbd.release("vol1", "pod-1")
        rbd.remove_image("vol1")
        assert ceph.list_keys("rbd") == []

    def test_duplicate_and_invalid(self, rbd):
        rbd.create_image("vol1", EXTENT_BYTES)
        with pytest.raises(ConflictError):
            rbd.create_image("vol1", EXTENT_BYTES)
        with pytest.raises(StorageError):
            rbd.create_image("vol2", 0)
