"""Unit + property tests for CRUSH-style placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientReplicasError
from repro.storage.crush import CrushMap, hrw_score, place
from repro.storage.osd import OSD


def make_osds(n, hosts=None, capacity=1e12):
    hosts = hosts or [f"host{i}" for i in range(n)]
    return [OSD(i, hosts[i % len(hosts)], capacity) for i in range(n)]


class TestHrwScore:
    def test_deterministic(self):
        assert hrw_score(1, 2) == hrw_score(1, 2)

    def test_in_unit_interval(self):
        for pg in range(50):
            for osd in range(10):
                assert 0 < hrw_score(pg, osd) <= 1

    def test_varies_with_inputs(self):
        scores = {hrw_score(pg, osd) for pg in range(10) for osd in range(10)}
        assert len(scores) == 100


class TestPlace:
    def test_returns_requested_replicas(self):
        osds = make_osds(10)
        assert len(place(7, osds, 3)) == 3

    def test_deterministic(self):
        osds = make_osds(10)
        a = [o.id for o in place(42, osds, 3)]
        b = [o.id for o in place(42, osds, 3)]
        assert a == b

    def test_host_separation(self):
        osds = make_osds(12, hosts=["h1", "h2", "h3", "h4"])
        for pg in range(40):
            chosen = place(pg, osds, 3)
            assert len({o.host for o in chosen}) == 3

    def test_falls_back_when_hosts_scarce(self):
        # 4 OSDs on 2 hosts, need 3 replicas: must double up on one host.
        osds = make_osds(4, hosts=["h1", "h2"])
        chosen = place(5, osds, 3)
        assert len(chosen) == 3
        assert len({o.host for o in chosen}) == 2

    def test_down_osds_excluded(self):
        osds = make_osds(5)
        osds[0].up = False
        for pg in range(30):
            assert osds[0] not in place(pg, osds, 3)

    def test_insufficient_osds_raises(self):
        with pytest.raises(InsufficientReplicasError):
            place(1, make_osds(2), 3)

    def test_minimal_reshuffle_on_osd_loss(self):
        """Removing one OSD only moves PGs that used it (HRW property)."""
        osds = make_osds(10)
        before = {pg: [o.id for o in place(pg, osds, 3)] for pg in range(200)}
        osds[4].up = False
        after = {pg: [o.id for o in place(pg, osds, 3)] for pg in range(200)}
        for pg in range(200):
            if 4 not in before[pg]:
                assert before[pg] == after[pg]

    def test_weight_biases_placement(self):
        """An OSD with 4x weight should receive noticeably more PGs."""
        osds = [OSD(i, f"h{i}", 1e12) for i in range(9)]
        osds.append(OSD(9, "h9", 4e12))
        primary_counts = {i: 0 for i in range(10)}
        for pg in range(3000):
            primary_counts[place(pg, osds, 1)[0].id] += 1
        mean_small = sum(primary_counts[i] for i in range(9)) / 9
        assert primary_counts[9] > 2.0 * mean_small

    @settings(max_examples=30, deadline=None)
    @given(pg=st.integers(min_value=0, max_value=10_000))
    def test_property_no_duplicate_osds(self, pg):
        osds = make_osds(8)
        chosen = place(pg, osds, 4)
        assert len({o.id for o in chosen}) == 4


class TestCrushMap:
    def test_pg_of_stable_and_in_range(self):
        cm = CrushMap(pg_num=64)
        assert cm.pg_of("pool", "key") == cm.pg_of("pool", "key")
        for i in range(100):
            assert 0 <= cm.pg_of("p", f"k{i}") < 64

    def test_pool_affects_pg(self):
        cm = CrushMap(pg_num=1024)
        pgs = {cm.pg_of(f"pool{i}", "same-key") for i in range(20)}
        assert len(pgs) > 1

    def test_bad_pg_num(self):
        with pytest.raises(ValueError):
            CrushMap(pg_num=0)

    def test_osds_for_uses_replication(self):
        cm = CrushMap()
        osds = make_osds(6)
        assert len(cm.osds_for("p", "k", osds, 3)) == 3

    def test_pg_distribution_roughly_uniform(self):
        cm = CrushMap(pg_num=16)
        counts = [0] * 16
        for i in range(3200):
            counts[cm.pg_of("p", f"object-{i}")] += 1
        assert min(counts) > 100  # expectation 200 per pg
