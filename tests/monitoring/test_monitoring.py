"""Tests for metrics, sampler, promql, and the ASCII dashboard."""

import numpy as np
import pytest

from repro.monitoring import Dashboard, MetricRegistry, Panel, Sampler, promql
from repro.monitoring.grafana import sparkline
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry(env):
    return MetricRegistry(env)


class TestRegistry:
    def test_gauge_records_at_sim_time(self, env, registry):
        def proc(env):
            registry.set_gauge("cpu", 1.0, {"pod": "a"})
            yield env.timeout(10)
            registry.set_gauge("cpu", 3.0, {"pod": "a"})

        env.process(proc(env))
        env.run()
        ts = registry.get("cpu", {"pod": "a"})
        assert ts.times == [0, 10]
        assert ts.values == [1.0, 3.0]

    def test_counter_accumulates(self, registry):
        registry.inc_counter("bytes", 100)
        registry.inc_counter("bytes", 50)
        assert registry.counter_total("bytes") == 150
        assert registry.get("bytes").values == [100, 150]

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.inc_counter("x", -1)

    def test_labels_separate_series(self, registry):
        registry.set_gauge("cpu", 1.0, {"pod": "a"})
        registry.set_gauge("cpu", 2.0, {"pod": "b"})
        assert len(registry.all_series("cpu")) == 2
        assert registry.get("cpu", {"pod": "a"}).latest() == 1.0

    def test_label_order_irrelevant(self, registry):
        registry.set_gauge("m", 1.0, {"a": "1", "b": "2"})
        registry.set_gauge("m", 2.0, {"b": "2", "a": "1"})
        assert len(registry.all_series("m")) == 1

    def test_time_monotonicity_enforced(self, env, registry):
        ts = registry.series("m")
        ts.append(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(4.0, 2.0)

    def test_names_sorted(self, registry):
        registry.set_gauge("zeta", 1)
        registry.set_gauge("alpha", 1)
        assert registry.names() == ["alpha", "zeta"]


class TestSampler:
    def test_scrapes_at_interval(self, env, registry):
        state = {"v": 0.0}
        sampler = Sampler(env, registry, interval=10)
        sampler.add_probe("val", lambda: state["v"])

        def mutator(env):
            yield env.timeout(15)
            state["v"] = 7.0
            yield env.timeout(20)

        env.process(mutator(env))
        env.run(until=40)
        ts = registry.get("val")
        assert ts.times == [0, 10, 20, 30, 40]
        assert ts.values == [0, 0, 7.0, 7.0, 7.0]

    def test_failing_probe_skipped(self, env, registry):
        sampler = Sampler(env, registry, interval=5)
        sampler.add_probe("bad", lambda: 1 / 0)
        sampler.add_probe("good", lambda: 1.0)
        env.run(until=20)
        assert registry.get("bad") is None or len(registry.get("bad")) == 0
        assert len(registry.get("good")) == 5

    def test_bad_interval(self, env, registry):
        with pytest.raises(ValueError):
            Sampler(env, registry, interval=0)


class TestPromql:
    def _series(self, registry, pts, name="m", labels=None):
        ts = registry.series(name, labels)
        for t, v in pts:
            ts.append(t, v)
        return ts

    def test_rate(self, registry):
        ts = self._series(registry, [(0, 0), (10, 500)])
        assert promql.rate(ts) == 50.0

    def test_rate_empty_and_single(self, registry):
        assert promql.rate(self._series(registry, [])) == 0.0
        assert promql.rate(self._series(registry, [(5, 10)], name="n")) == 0.0

    def test_avg_over_time_trapezoidal(self, registry):
        ts = self._series(registry, [(0, 0.0), (10, 10.0)])
        assert promql.avg_over_time(ts) == pytest.approx(5.0)

    def test_max_min_over_time(self, registry):
        ts = self._series(registry, [(0, 3.0), (5, 9.0), (10, 1.0)])
        assert promql.max_over_time(ts) == 9.0
        assert promql.min_over_time(ts) == 1.0

    def test_window_restriction(self, registry):
        ts = self._series(registry, [(0, 1.0), (5, 100.0), (10, 2.0)])
        assert promql.max_over_time(ts, start=6, end=10) == 2.0

    def test_sum_series_step_interpolation(self, registry):
        a = self._series(registry, [(0, 1.0), (10, 3.0)], labels={"w": "a"})
        b = self._series(registry, [(5, 10.0)], labels={"w": "b"})
        grid, total = promql.sum_series([a, b])
        np.testing.assert_array_equal(grid, [0, 5, 10])
        np.testing.assert_array_equal(total, [1.0, 11.0, 13.0])

    def test_sum_series_empty(self):
        grid, total = promql.sum_series([])
        assert len(grid) == 0

    def test_aggregate_by(self, registry):
        a = self._series(registry, [(0, 1)], labels={"node": "n1", "pod": "a"})
        b = self._series(registry, [(0, 1)], labels={"node": "n1", "pod": "b"})
        c = self._series(registry, [(0, 1)], labels={"node": "n2", "pod": "c"})
        groups = promql.aggregate_by([a, b, c], "node")
        assert sorted(groups) == ["n1", "n2"]
        assert len(groups["n1"]) == 2


class TestDashboard:
    def test_sparkline_resamples(self):
        line = sparkline(range(1000), width=40)
        assert len(line) == 40

    def test_sparkline_flat_and_empty(self):
        assert set(sparkline([5, 5, 5], width=10)) == {"▁"}
        assert sparkline([], width=10) == " " * 10

    def test_panel_renders_series(self, env, registry):
        registry.set_gauge("cpu", 1.0, {"pod": "w1"})
        registry.set_gauge("cpu", 5.0, {"pod": "w1"})
        panel = Panel(title="CPU", metric="cpu", unit="cores")
        out = panel.render(registry)
        assert "CPU" in out
        assert "pod=w1" in out
        assert "max 5.00" in out

    def test_stat_panel(self, env, registry):
        registry.set_gauge("bytes", 2e9)
        panel = Panel(title="Data", metric="bytes", unit="GB", scale=1e-9,
                      kind="stat")
        assert "2.00 GB" in panel.render(registry)

    def test_empty_panel(self, registry):
        assert "(no data)" in Panel(title="X", metric="none").render(registry)

    def test_dashboard_peaks(self, env, registry):
        registry.set_gauge("mem", 5.0, {"pod": "a"})
        registry.set_gauge("mem", 7.0, {"pod": "b"})
        dash = Dashboard("test", registry)
        assert dash.peak("mem") == 7.0
        assert dash.aggregate_peak("mem") == 12.0

    def test_dashboard_render_stacks_panels(self, env, registry):
        registry.set_gauge("a", 1.0)
        dash = Dashboard("Nautilus", registry)
        dash.add_panel(Panel(title="A", metric="a"))
        dash.add_panel(Panel(title="B", metric="b"))
        out = dash.render()
        assert "Nautilus" in out and "A" in out and "(no data)" in out
