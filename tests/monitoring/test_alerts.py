"""Tests for the alerting engine."""

import pytest

from repro.monitoring import MetricRegistry
from repro.monitoring.alerts import (
    AlertManager,
    AlertRule,
    AlertState,
    aggregate_above,
    gauge_above,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry(env):
    return MetricRegistry(env)


@pytest.fixture
def manager(env, registry):
    return AlertManager(env, registry, interval=10.0)


class TestAlertLifecycle:
    def test_fires_after_for_duration(self, env, registry, manager):
        manager.add_rule(AlertRule(
            name="HotNode",
            condition=gauge_above("cpu", 20.0),
            for_seconds=25.0,
        ))

        def load(env):
            registry.set_gauge("cpu", 30.0, {"node": "a"})
            yield env.timeout(100)

        env.process(load(env))
        env.run(until=15)
        assert manager.state("HotNode") is AlertState.PENDING
        env.run(until=40)
        assert manager.state("HotNode") is AlertState.FIRING
        assert len(manager.firing()) == 1

    def test_resolves_when_condition_clears(self, env, registry, manager):
        manager.add_rule(AlertRule(
            name="HotNode", condition=gauge_above("cpu", 20.0)
        ))

        def load(env):
            registry.set_gauge("cpu", 30.0)
            yield env.timeout(35)
            registry.set_gauge("cpu", 5.0)
            yield env.timeout(35)

        env.process(load(env))
        env.run(until=80)
        assert manager.state("HotNode") is AlertState.INACTIVE
        assert manager.history[0].resolved_at is not None
        assert not manager.firing()

    def test_flapping_below_for_never_fires(self, env, registry, manager):
        manager.add_rule(AlertRule(
            name="Flappy", condition=gauge_above("x", 1.0), for_seconds=25.0
        ))

        def flap(env):
            for _ in range(5):
                registry.set_gauge("x", 2.0)
                yield env.timeout(10)
                registry.set_gauge("x", 0.0)
                yield env.timeout(10)

        env.process(flap(env))
        env.run(until=120)
        assert manager.state("Flappy") is not AlertState.FIRING
        assert manager.history == []

    def test_notifier_called_on_fire(self, env, registry, manager):
        seen = []
        manager.notifiers.append(seen.append)
        manager.add_rule(AlertRule(
            name="N", condition=gauge_above("x", 0.5), severity="critical"
        ))
        registry.set_gauge("x", 1.0)
        env.run(until=20)
        assert len(seen) == 1
        assert seen[0].severity == "critical"

    def test_broken_condition_does_not_crash(self, env, registry, manager):
        manager.add_rule(AlertRule(
            name="Broken", condition=lambda r: 1 / 0
        ))
        env.run(until=50)
        assert manager.state("Broken") is AlertState.INACTIVE

    def test_duplicate_rule_rejected(self, manager):
        manager.add_rule(AlertRule(name="A", condition=lambda r: False))
        with pytest.raises(ValueError):
            manager.add_rule(AlertRule(name="A", condition=lambda r: False))

    def test_bad_interval(self, env, registry):
        with pytest.raises(ValueError):
            AlertManager(env, registry, interval=0)


class TestConditions:
    def test_gauge_above(self, registry):
        cond = gauge_above("m", 10.0)
        assert not cond(registry)
        registry.set_gauge("m", 5.0, {"a": "1"})
        assert not cond(registry)
        registry.set_gauge("m", 15.0, {"a": "2"})
        assert cond(registry)

    def test_aggregate_above(self, registry):
        cond = aggregate_above("m", 10.0)
        registry.set_gauge("m", 6.0, {"a": "1"})
        registry.set_gauge("m", 6.0, {"a": "2"})
        assert cond(registry)


class TestNautilusIntegration:
    def test_ceph_degraded_alert_fires_on_osd_loss(self):
        """Wire an alert to the testbed's health and kill an OSD."""
        from repro.testbed import build_nautilus_testbed

        testbed = build_nautilus_testbed(seed=5, scale=0.0001)
        manager = AlertManager(testbed.env, testbed.registry, interval=5.0)
        testbed.sampler.add_probe(
            "ceph_degraded_objects",
            lambda: float(testbed.ceph.degraded_objects()),
        )
        manager.add_rule(AlertRule(
            name="CephDegraded",
            condition=gauge_above("ceph_degraded_objects", 0.0),
            severity="critical",
        ))
        testbed.ceph.put_sync("merra", "obj", 1e9)
        victim = testbed.ceph.holders("merra", "obj")[0]

        def chaos(env):
            yield env.timeout(30)
            testbed.ceph.fail_osd(victim.id)

        testbed.env.process(chaos(testbed.env))
        testbed.env.run(until=60)
        # Degraded -> alert fires; recovery then re-replicates and the
        # alert resolves.
        assert any(a.rule == "CephDegraded" for a in manager.history)
        testbed.env.run(until=400)
        assert manager.state("CephDegraded") is AlertState.INACTIVE
