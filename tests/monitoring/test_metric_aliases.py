"""Prometheus-convention metric names and the legacy alias map."""

import pytest

from repro.monitoring.metrics import (
    METRIC_ALIASES,
    MetricRegistry,
    canonical_metric_name,
)
from repro.sim import Environment


@pytest.fixture
def registry():
    return MetricRegistry(Environment())


def test_canonical_metric_name_maps_and_passes_through():
    assert canonical_metric_name("node_gpu_in_use") == "node_gpus_in_use"
    assert (
        canonical_metric_name("thredds_egress_Bps")
        == "thredds_egress_bytes_per_second"
    )
    # Canonical and unknown names pass through unchanged.
    assert canonical_metric_name("node_gpus_in_use") == "node_gpus_in_use"
    assert canonical_metric_name("custom_metric") == "custom_metric"


def test_alias_targets_follow_prometheus_conventions():
    for old, new in METRIC_ALIASES.items():
        assert old != new
        assert new == new.lower()
        # Unit or counter suffix per Prometheus naming conventions.
        assert new.rsplit("_", 1)[-1] in {
            "cores", "bytes", "second", "total", "use", "done",
        }, new


def test_gauge_written_old_name_readable_new_name(registry):
    registry.set_gauge("node_gpu_in_use", 3.0, labels={"node": "n0"})
    ts_new = registry.series("node_gpus_in_use", labels={"node": "n0"})
    ts_old = registry.series("node_gpu_in_use", labels={"node": "n0"})
    assert ts_new is ts_old
    assert ts_new.name == "node_gpus_in_use"
    _, values = ts_new.as_arrays()
    assert values[-1] == 3.0


def test_counter_resolves_under_both_names(registry):
    registry.inc_counter("step1_files_downloaded", amount=5.0)
    registry.inc_counter("step1_downloaded_files_total", amount=2.0)
    assert registry.counter_total("step1_downloaded_files_total") == 7.0
    assert registry.counter_total("step1_files_downloaded") == 7.0


def test_all_series_merges_alias_and_canonical_writes(registry):
    registry.set_gauge("ceph_bytes_used", 1.0)
    registry.set_gauge("ceph_used_bytes", 2.0)
    series = registry.all_series("ceph_bytes_used")
    assert len(series) == 1
    assert series == registry.all_series("ceph_used_bytes")
